"""Tests for read/update locking (the general Moss automaton M_X)."""

import pytest

from repro import (
    Access,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    ReadUpdateLockingObject,
    RequestCommit,
    ROOT,
    RWSpec,
    SystemType,
    certify,
)
from repro.locking.read_update import ReadUpdateState
from repro.spec.builtin import (
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Withdraw,
)

from conftest import T

C = ObjectName("c")


def setup(spec, *accesses):
    system = SystemType({C: spec})
    for name, operation in accesses:
        system.register_access(name, Access(C, operation))
    return system, ReadUpdateLockingObject(C, system)


class TestBasics:
    def test_initial_root_holds_state(self):
        _, obj = setup(CounterType(initial=5))
        state = obj.initial_state()
        assert state.update_lockholders == {ROOT}
        assert state.state_of(ROOT) == 5

    def test_requires_datatype(self):
        system = SystemType({C: RWSpec()})
        with pytest.raises(TypeError):
            ReadUpdateLockingObject(C, system)


class TestLocking:
    def test_update_applies_operation(self):
        inc = T("t", "i")
        _, obj = setup(CounterType(initial=5), (inc, CounterInc(3)))
        state = obj.effect(obj.initial_state(), Create(inc))
        assert obj.enabled(state, RequestCommit(inc, OK))
        state = obj.effect(state, RequestCommit(inc, OK))
        assert inc in state.update_lockholders
        assert state.state_of(inc) == 8
        # root's pristine state survives underneath
        assert state.state_of(ROOT) == 5

    def test_read_shares(self):
        r1, r2 = T("t1", "r"), T("t2", "r")
        _, obj = setup(
            CounterType(initial=5), (r1, CounterRead()), (r2, CounterRead())
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(r1))
        state = obj.effect(state, RequestCommit(r1, 5))
        state = obj.effect(state, Create(r2))
        assert obj.enabled(state, RequestCommit(r2, 5))

    def test_updates_serialise_even_when_commuting(self):
        # the conservative point: commuting increments still block
        i1, i2 = T("t1", "i"), T("t2", "i")
        _, obj = setup(CounterType(), (i1, CounterInc(1)), (i2, CounterInc(1)))
        state = obj.initial_state()
        state = obj.effect(state, Create(i1))
        state = obj.effect(state, RequestCommit(i1, OK))
        state = obj.effect(state, Create(i2))
        assert not obj.enabled(state, RequestCommit(i2, OK))
        assert i2 in set(obj.blocked_accesses(state))

    def test_read_blocked_by_update(self):
        inc, read = T("t1", "i"), T("t2", "r")
        _, obj = setup(CounterType(), (inc, CounterInc(1)), (read, CounterRead()))
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, Create(read))
        assert not obj.enabled(state, RequestCommit(read, 1))

    def test_descendant_sees_tentative_state(self):
        inc, read = T("t", "i"), T("t", "u", "r")
        _, obj = setup(
            CounterType(initial=5), (inc, CounterInc(3)), (read, CounterRead())
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, InformCommit(C, inc))  # lock moves to t
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 8))
        assert not obj.enabled(state, RequestCommit(read, 5))


class TestInheritanceAndUndo:
    def test_inform_commit_moves_state_up(self):
        inc = T("t", "i")
        _, obj = setup(CounterType(initial=0), (inc, CounterInc(7)))
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, InformCommit(C, inc))
        state = obj.effect(state, InformCommit(C, T("t")))
        assert state.update_lockholders == {ROOT}
        assert state.state_of(ROOT) == 7

    def test_inform_abort_restores(self):
        inc, read = T("t1", "i"), T("t2", "r")
        _, obj = setup(
            CounterType(initial=5), (inc, CounterInc(3)), (read, CounterRead())
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, InformAbort(C, T("t1")))
        assert state.update_lockholders == {ROOT}
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 5))


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_runs_are_serially_correct(self, seed):
        from repro import (
            CounterKind,
            EagerInformPolicy,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=seed, top_level=4, objects=2, kind=CounterKind())
        )
        system = make_generic_system(system_type, programs, ReadUpdateLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=seed), system_type,
            max_steps=6000, resolve_deadlocks=True,
        )
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    def test_bank_account_withdrawals_serialise(self):
        w1, w2 = T("t1", "w"), T("t2", "w")
        _, obj = setup(
            BankAccountType(initial=100), (w1, Withdraw(10)), (w2, Withdraw(10))
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(w1))
        state = obj.effect(state, RequestCommit(w1, OK))
        state = obj.effect(state, Create(w2))
        # undo logging would admit this (withdrawals commute); M_X blocks it
        assert not obj.enabled(state, RequestCommit(w2, OK))


class TestReadOnlyFlags:
    def test_flags_are_sound(self):
        """Every op flagged read-only must leave every sampled state fixed."""
        from repro.spec.builtin import (
            Deposit,
            Dequeue,
            Enqueue,
            QueueType,
            RegRead,
            RegWrite,
            RegisterType,
            SetInsert,
            SetMember,
            SetType,
        )
        from repro.spec.commutativity import exhaustive_prefixes

        cases = [
            (RegisterType(initial=0), [RegRead(), RegWrite(1)]),
            (CounterType(), [CounterRead(), CounterInc(2)]),
            (SetType(), [SetMember(1), SetInsert(1)]),
            (BankAccountType(initial=5), [BalanceRead(), Deposit(2), Withdraw(3)]),
            (QueueType(), [Enqueue(1), Dequeue()]),
        ]
        for datatype, operations in cases:
            for prefix in exhaustive_prefixes(datatype, operations, 2):
                state = datatype.replay(prefix)
                for op in operations:
                    if datatype.is_read_only(op):
                        new_state, _ = datatype.apply(state, op)
                        assert datatype.states_equivalent(state, new_state)
