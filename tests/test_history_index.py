"""The shared history index: indexed-vs-naive equivalence and memoization.

The ``HistoryIndex`` fast path must be invisible in every output: the
indexed and naive certification engines agree on verdicts, on the edge
lists of the serialization graphs, and on cycle witnesses, across seeded
random workloads (mirroring ``tests/test_online.py``'s incremental-vs-
naive pattern).  The rest of this module pins the index's individual
guarantees: projections are exact slices, orphan/visibility memoization
stays correct under late ABORTs, the conflict cache and the read-run
skip never change an edge.
"""

from __future__ import annotations

import pytest

from conftest import (
    T,
    BehaviorBuilder,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)
from repro import (
    ROOT,
    HistoryIndex,
    MetricsRegistry,
    ObjectName,
    StatusIndex,
    certify,
    clean_projection,
    conflict_pairs,
    precedes_pairs,
    project_object,
    project_transaction,
    serial_projection,
    visible_projection,
)
from repro.core.history import ConflictCache
from test_core_properties import random_simple_behavior
from test_online import random_contended_behavior


def graph_edges(certificate):
    return sorted(
        (e.source, e.target, e.kind) for e in certificate.graph.edges()
    )


class TestIndexedVsNaiveEngines:
    """The A/B flag: ``certify(indexed=...)`` engines are indistinguishable."""

    def test_200_seeded_workloads_agree(self):
        rejected_seen = 0
        for seed in range(200):
            behavior, system = random_simple_behavior(seed, steps=30)
            fast = certify(behavior, system, indexed=True)
            naive = certify(behavior, system, indexed=False)
            assert fast.certified == naive.certified, seed
            assert fast.arv_violations == naive.arv_violations, seed
            assert fast.cycle == naive.cycle, seed
            assert graph_edges(fast) == graph_edges(naive), seed
            assert fast.witness == naive.witness, seed
            rejected_seen += not fast.certified
        # the sweep must actually exercise both verdicts
        assert 0 < rejected_seen < 200

    def test_contended_interleavings_agree_on_cycle_witnesses(self):
        cyclic_seen = 0
        for seed in range(60):
            behavior, system = random_contended_behavior(seed)
            fast = certify(behavior, system, indexed=True)
            naive = certify(behavior, system, indexed=False)
            assert fast.certified == naive.certified, seed
            # identical witness, not just identical verdict: same parent,
            # same node sequence
            assert fast.cycle == naive.cycle, seed
            assert graph_edges(fast) == graph_edges(naive), seed
            cyclic_seen += fast.cycle is not None
        assert cyclic_seen > 0

    @pytest.mark.parametrize(
        "scenario",
        [serial_two_txn_behavior, lost_update_behavior, dirty_read_behavior],
    )
    def test_canonical_scenarios_agree(self, scenario):
        behavior, system = scenario()
        fast = certify(behavior, system, indexed=True)
        naive = certify(behavior, system, indexed=False)
        assert fast.certified == naive.certified
        assert fast.cycle == naive.cycle
        assert [str(v) for v in fast.arv_violations] == [
            str(v) for v in naive.arv_violations
        ]
        assert graph_edges(fast) == graph_edges(naive)

    def test_pair_enumerations_agree_given_a_shared_index(self):
        for seed in (3, 17, 42):
            behavior, system = random_simple_behavior(seed, steps=40)
            serial = serial_projection(behavior)
            hist = HistoryIndex(serial, system)
            naive_index = StatusIndex(serial)
            assert conflict_pairs(serial, system, hist) == conflict_pairs(
                serial, system, naive_index
            ), seed
            # indexed=False forces the all-pairs loop even on a HistoryIndex
            assert conflict_pairs(serial, system, hist) == conflict_pairs(
                serial, system, hist, indexed=False
            ), seed
            assert precedes_pairs(serial, hist) == precedes_pairs(
                serial, naive_index
            ), seed


class TestProjectionSlices:
    """Index slices equal the definitional scans, event for event."""

    @pytest.mark.parametrize("seed", [0, 7, 23, 91])
    def test_all_projections_match_naive(self, seed):
        behavior, system = random_simple_behavior(seed, steps=40)
        serial = serial_projection(behavior)
        hist = HistoryIndex(serial, system)
        assert hist.serial_projection() == serial
        assert hist.visible_projection(ROOT) == visible_projection(
            serial, ROOT, StatusIndex(serial)
        )
        assert hist.clean_projection() == clean_projection(serial)
        transactions = {t for t in hist.create_requested} | {ROOT}
        for txn in transactions:
            assert hist.project_transaction(txn) == project_transaction(
                serial, txn
            ), txn
        for obj in system.object_names():
            assert hist.project_object(obj) == project_object(
                serial, obj, system
            ), obj

    def test_module_helpers_dispatch_to_covering_index(self):
        behavior, system = serial_two_txn_behavior()
        hist = HistoryIndex(behavior, system)
        assert visible_projection(behavior, ROOT, hist) is hist.visible_projection(
            ROOT
        )
        assert clean_projection(behavior, hist) is hist.clean_projection()
        assert project_transaction(behavior, ROOT, hist) is hist.project_transaction(
            ROOT
        )

    def test_non_covering_index_falls_back_to_scan(self):
        behavior, system = serial_two_txn_behavior()
        hist = HistoryIndex(behavior, system)
        prefix = behavior[:-1]
        assert not hist.covers(prefix)
        # the helper must not serve the full behavior's cache for a prefix
        assert visible_projection(prefix, ROOT, StatusIndex(prefix)) == (
            visible_projection(prefix, ROOT, hist)
        )

    def test_project_object_requires_system_type(self):
        behavior, _ = serial_two_txn_behavior()
        hist = HistoryIndex(behavior)
        with pytest.raises(ValueError):
            hist.project_object(ObjectName("x"))


class TestMemoizationUnderLateAborts:
    """Late ABORTs: memos are per-snapshot, so a new index sees new truth."""

    def _two_level_behavior(self, abort_parent):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        top = b.begin_top("t")
        child = T("t", "c")
        b.begin(child)
        b.write(child, "w", "x", 5)
        b.commit(child)
        if abort_parent:
            b.abort(top)
        else:
            b.commit(top)
        return b.build(), system

    def test_orphan_and_visibility_flip_with_a_late_abort(self):
        committed, system = self._two_level_behavior(abort_parent=False)
        aborted, _ = self._two_level_behavior(abort_parent=True)
        access = T("t", "c", "w")
        hist_ok = HistoryIndex(committed, system)
        hist_ab = HistoryIndex(aborted, system)
        # memoized answers agree with the naive StatusIndex walk...
        for hist, behavior in ((hist_ok, committed), (hist_ab, aborted)):
            naive = StatusIndex(behavior)
            for txn in (T("t"), T("t", "c"), access):
                assert hist.is_orphan(txn) == naive.is_orphan(txn), txn
                assert hist.is_visible(txn, ROOT) == naive.is_visible(txn, ROOT)
        # ...and the abort actually flips them
        assert not hist_ok.is_orphan(access)
        assert hist_ok.is_visible(access, ROOT)
        assert hist_ab.is_orphan(access)
        assert not hist_ab.is_visible(access, ROOT)

    def test_memo_is_hit_on_repeated_queries(self):
        behavior, system = self._two_level_behavior(abort_parent=True)
        metrics = MetricsRegistry()
        hist = HistoryIndex(behavior, system, metrics)
        access = T("t", "c", "w")
        assert not hist.is_visible(access, ROOT)
        misses = metrics.snapshot()["counters"][
            "history.index.visibility.memo_misses"
        ]
        for _ in range(5):
            assert not hist.is_visible(access, ROOT)
        counters = metrics.snapshot()["counters"]
        assert counters["history.index.visibility.memo_misses"] == misses
        assert counters["history.index.visibility.memo_hits"] >= 5

    def test_orphan_memo_covers_descendants_of_the_aborted_parent(self):
        behavior, system = self._two_level_behavior(abort_parent=True)
        hist = HistoryIndex(behavior, system)
        # querying the deepest name first populates the whole chain's memo
        assert hist.is_orphan(T("t", "c", "w"))
        assert hist.is_orphan(T("t", "c"))
        assert hist.is_orphan(T("t"))
        assert not hist.is_orphan(ROOT)


class TestConflictMachinery:
    def test_conflict_cache_memoizes_verdicts(self):
        cache = ConflictCache()
        spec = rw_system("x").spec(ObjectName("x"))
        from repro import OK, ReadOp, WriteOp

        assert cache.conflicts(spec, WriteOp(1), OK, ReadOp(), 1)
        assert cache.misses == 1 and cache.hits == 0
        assert cache.conflicts(spec, WriteOp(1), OK, ReadOp(), 1)
        assert cache.misses == 1 and cache.hits == 1
        assert not cache.conflicts(spec, ReadOp(), 0, ReadOp(), 0)
        assert len(cache) == 2

    def test_read_runs_are_skipped_but_edges_are_identical(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        txns = [b.begin_top(f"t{i}") for i in range(6)]
        for i, txn in enumerate(txns):
            if i == 3:
                b.write(txn, "w", "x", 9)
            else:
                b.read(txn, "r", "x", 0 if i < 3 else 9)
        for txn in txns:
            b.commit(txn)
        behavior = b.build()
        metrics = MetricsRegistry()
        hist = HistoryIndex(behavior, system, metrics)
        indexed_edges = conflict_pairs(behavior, system, hist)
        naive_edges = conflict_pairs(behavior, system, StatusIndex(behavior))
        assert indexed_edges == naive_edges
        counters = metrics.snapshot()["counters"]
        # 6 ops, 1 writer: 15 all-pairs, only 5 involve the writer
        assert counters["history.index.conflict.pairs_checked"] == 5
        assert counters["history.index.conflict.pairs_skipped_read_runs"] == 10

    def test_certify_emits_history_index_counters(self):
        behavior, system = lost_update_behavior()
        metrics = MetricsRegistry()
        certificate = certify(behavior, system, metrics=metrics)
        assert certificate.cycle is not None
        counters = metrics.snapshot()["counters"]
        assert counters["history.index.builds"] == 1
        assert counters["history.index.events"] == len(behavior)
        assert counters["history.index.conflict.pairs_checked"] >= 1
