"""Tests for sibling orders, R_trans, R_event, and suitability."""

import pytest

from repro import (
    Commit,
    Create,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    SiblingOrder,
)
from repro.core.sibling_order import consistent_partial_orders, is_suitable

from conftest import BehaviorBuilder, T, rw_system


class TestSiblingOrder:
    def test_total_order_holds(self):
        order = SiblingOrder({T(): [T("a"), T("b"), T("c")]})
        assert order.holds(T("a"), T("b"))
        assert order.holds(T("a"), T("c"))
        assert not order.holds(T("b"), T("a"))
        assert not order.holds(T("a"), T("a"))

    def test_orders_either_direction(self):
        order = SiblingOrder({T(): [T("a"), T("b")]})
        assert order.orders(T("b"), T("a"))
        assert not order.orders(T("a"), T("zzz"))

    def test_pairs_materialisation(self):
        order = SiblingOrder({T(): [T("a"), T("b"), T("c")]})
        assert order.pairs() == {
            (T("a"), T("b")),
            (T("a"), T("c")),
            (T("b"), T("c")),
        }

    def test_from_pairs(self):
        order = SiblingOrder.from_pairs([(T("a"), T("b"))])
        assert order.holds(T("a"), T("b"))
        with pytest.raises(ValueError):
            order.add_pair(T("b"), T("a"))  # would be cyclic on the pair

    def test_non_siblings_rejected(self):
        with pytest.raises(ValueError):
            SiblingOrder.from_pairs([(T("a"), T("b", "c"))])
        with pytest.raises(ValueError):
            SiblingOrder({T("p"): [T("q", "r")]})

    def test_duplicate_child_rejected(self):
        with pytest.raises(ValueError):
            SiblingOrder({T(): [T("a"), T("a")]})

    def test_trans_holds_descendants(self):
        order = SiblingOrder({T(): [T("a"), T("b")]})
        assert order.trans_holds(T("a", "deep", "leaf"), T("b"))
        assert order.trans_holds(T("a"), T("b", "x"))
        assert not order.trans_holds(T("b", "x"), T("a"))

    def test_trans_never_relates_relatives(self):
        order = SiblingOrder({T(): [T("a"), T("b")]})
        assert not order.trans_holds(T("a"), T("a", "x"))
        assert not order.trans_holds(T("a", "x"), T("a"))
        assert not order.trans_holds(T("a"), T("a"))

    def test_sorted_children_deterministic(self):
        order = SiblingOrder({T(): [T("b"), T("a")]})
        children = [T("a"), T("b"), T("c")]
        assert order.sorted_children(T(), children) == [T("b"), T("a"), T("c")]

    def test_event_pairs(self):
        order = SiblingOrder({T(): [T("a"), T("b")]})
        behavior = (
            Create(T("b")),       # low = b
            Create(T("a")),       # low = a
            Commit(T("a", "c")),  # low = a/c (descendant of a)
        )
        pairs = set(order.event_pairs(behavior))
        assert (1, 0) in pairs  # a-event before b-event in R
        assert (2, 0) in pairs  # a/c under a relates to b
        assert (0, 1) not in pairs


class TestConsistency:
    def test_consistent_when_disjoint(self):
        assert consistent_partial_orders([(0, 1)], [(2, 3)], range(4))

    def test_inconsistent_when_opposed(self):
        assert not consistent_partial_orders([(0, 1)], [(1, 0)], range(2))

    def test_restricted_to_nodes(self):
        # the conflicting pair is outside the node set
        assert consistent_partial_orders([(0, 1)], [(1, 0)], {5})


class TestSuitability:
    def _behavior(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 1)
        b.commit(t1)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 1)
        b.commit(t2)
        return b.build(), system

    def test_matching_order_is_suitable(self):
        behavior, _ = self._behavior()
        order = SiblingOrder(
            {
                T(): [T("t1"), T("t2")],
                T("t1"): [T("t1", "w")],
                T("t2"): [T("t2", "r")],
            }
        )
        assert is_suitable(order, behavior, T())

    def test_reversed_order_violates_affects(self):
        # t2 was requested after t1's report, so affects forces t1 before t2;
        # an order putting t2 first cannot be suitable.
        behavior, _ = self._behavior()
        order = SiblingOrder(
            {
                T(): [T("t2"), T("t1")],
                T("t1"): [T("t1", "w")],
                T("t2"): [T("t2", "r")],
            }
        )
        assert not is_suitable(order, behavior, T())

    def test_unordered_visible_siblings_not_suitable(self):
        behavior, _ = self._behavior()
        order = SiblingOrder(
            {T("t1"): [T("t1", "w")], T("t2"): [T("t2", "r")]}
        )  # t1 vs t2 unordered
        assert not is_suitable(order, behavior, T())
