"""Tests for the simple database automaton and simple-behavior checker."""

from repro import (
    Abort,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    SimpleDatabase,
    check_simple_behavior,
)
from repro.automata.base import replay_schedule

from conftest import BehaviorBuilder, T, rw_system, serial_two_txn_behavior


class TestCheckSimpleBehavior:
    def test_valid_behavior(self):
        behavior, system = serial_two_txn_behavior()
        assert check_simple_behavior(behavior, system) == []

    def test_create_without_request(self):
        system = rw_system("x")
        problems = check_simple_behavior((Create(T("a")),), system)
        assert any("without REQUEST_CREATE" in p for p in problems)

    def test_duplicate_create(self):
        system = rw_system("x")
        problems = check_simple_behavior(
            (RequestCreate(T("a")), Create(T("a")), Create(T("a"))), system
        )
        assert any("duplicate CREATE" in p for p in problems)

    def test_double_completion(self):
        system = rw_system("x")
        problems = check_simple_behavior(
            (
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 1),
                Commit(T("a")),
                Abort(T("a")),
            ),
            system,
        )
        assert any("second completion" in p for p in problems)

    def test_commit_without_request(self):
        system = rw_system("x")
        problems = check_simple_behavior((Commit(T("a")),), system)
        assert any("COMMIT without REQUEST_COMMIT" in p for p in problems)

    def test_report_of_phantom_completion(self):
        system = rw_system("x")
        problems = check_simple_behavior((ReportCommit(T("a"), 1),), system)
        assert any("not committed" in p for p in problems)
        problems = check_simple_behavior((ReportAbort(T("a")),), system)
        assert any("not aborted" in p for p in problems)

    def test_access_response_without_invocation(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.read(t, "r", "x", 0)  # registers the access properly
        behavior = (RequestCommit(access, 0),)  # response with no CREATE
        problems = check_simple_behavior(behavior, system)
        assert any("never invoked" in p for p in problems)

    def test_double_access_response(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.read(t, "r", "x", 0, commit=False)
        b.emit(RequestCommit(access, 0))  # second response
        problems = check_simple_behavior(b.build(), system)
        assert any("second response" in p for p in problems)

    def test_abort_of_created_transaction_allowed(self):
        # unlike the serial scheduler, the simple database (and generic
        # controller) may abort transactions that already ran
        system = rw_system("x")
        problems = check_simple_behavior(
            (RequestCreate(T("a")), Create(T("a")), Abort(T("a"))), system
        )
        assert problems == []

    def test_sibling_concurrency_allowed(self):
        system = rw_system("x")
        problems = check_simple_behavior(
            (
                RequestCreate(T("a")),
                RequestCreate(T("b")),
                Create(T("a")),
                Create(T("b")),
            ),
            system,
        )
        assert problems == []


class TestSimpleDatabaseAutomaton:
    def test_replay_valid_schedule(self):
        behavior, system = serial_two_txn_behavior()
        automaton = SimpleDatabase(system)
        execution = replay_schedule(automaton, behavior)
        assert T("t1") in execution.final_state.committed
        assert T("t2") in execution.final_state.committed

    def test_output_preconditions(self):
        system = rw_system("x")
        automaton = SimpleDatabase(system)
        state = automaton.initial_state()
        assert not automaton.enabled(state, Create(T("a")))
        state = automaton.effect(state, RequestCreate(T("a")))
        assert automaton.enabled(state, Create(T("a")))
        assert automaton.enabled(state, Abort(T("a")))
        assert not automaton.enabled(state, Commit(T("a")))

    def test_access_response_arbitrary_value(self):
        # the simple database permits arbitrary access return values
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.read(t, "r", "x", 0, commit=False)
        automaton = SimpleDatabase(system)
        state = automaton.initial_state()
        for action in (
            RequestCreate(t),
            Create(t),
            RequestCreate(access),
            Create(access),
        ):
            state = automaton.effect(state, action)
        assert automaton.enabled(state, RequestCommit(access, "anything"))
        state = automaton.effect(state, RequestCommit(access, "anything"))
        assert not automaton.enabled(state, RequestCommit(access, "again"))

    def test_signature_split(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.read(t, "r", "x", 0, commit=False)
        automaton = SimpleDatabase(system)
        # non-access REQUEST_COMMIT is an input; access one is an output
        assert automaton.is_input(RequestCommit(t, 1))
        assert automaton.is_output(RequestCommit(access, 1))
        assert automaton.is_input(RequestCreate(t))
        assert automaton.is_output(Create(t))


class TestGenericImplementsSimple:
    def test_generic_run_satisfies_simple_constraints(self):
        # the paper's architecture: a generic system implements the simple
        # system; check the driver's serial projections pass the checker
        from repro import (
            EagerInformPolicy,
            MossRWLockingObject,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
            serial_projection,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=3, top_level=3, objects=2)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, EagerInformPolicy(seed=3), system_type)
        assert (
            check_simple_behavior(serial_projection(result.behavior), system_type)
            == []
        )
