"""Undo logging over plain RWSpec objects — the cross-protocol claim.

The undo logging automaton works with any serial specification exposing
``conflicts``/``is_legal``/``result_of``; the docstrings claim that
includes :class:`repro.core.rw_semantics.RWSpec` (yielding a read/write
object with classical conflicts).  These tests back the claim.
"""

import pytest

from repro import (
    Access,
    Create,
    EagerInformPolicy,
    InformCommit,
    ObjectName,
    RandomPolicy,
    ReadOp,
    RequestCommit,
    RWKind,
    RWSpec,
    SystemType,
    UndoLoggingObject,
    WorkloadConfig,
    WriteOp,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)
from repro.core.rw_semantics import OK

from conftest import T

X = ObjectName("x")


class TestTransitions:
    def _setup(self):
        system = SystemType({X: RWSpec(initial=0)})
        writer, reader = T("t1", "w"), T("t2", "r")
        system.register_access(writer, Access(X, WriteOp(5)))
        system.register_access(reader, Access(X, ReadOp()))
        return system, UndoLoggingObject(X, system), writer, reader

    def test_classical_conflicts_block_reader(self):
        system, obj, writer, reader = self._setup()
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, Create(reader))
        # write/read conflict (classical rule): reader waits for commits
        assert not obj.enabled(state, RequestCommit(reader, 5))
        state = obj.effect(state, InformCommit(X, writer))
        state = obj.effect(state, InformCommit(X, T("t1")))
        assert obj.enabled(state, RequestCommit(reader, 5))

    def test_reads_share(self):
        system = SystemType({X: RWSpec(initial=0)})
        r1, r2 = T("t1", "r"), T("t2", "r")
        system.register_access(r1, Access(X, ReadOp()))
        system.register_access(r2, Access(X, ReadOp()))
        obj = UndoLoggingObject(X, system)
        state = obj.initial_state()
        state = obj.effect(state, Create(r1))
        state = obj.effect(state, RequestCommit(r1, 0))
        state = obj.effect(state, Create(r2))
        assert obj.enabled(state, RequestCommit(r2, 0))


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_runs_certify(self, seed):
        system_type, programs = generate_workload(
            WorkloadConfig(seed=seed, top_level=4, objects=2, kind=RWKind())
        )
        system = make_generic_system(system_type, programs, UndoLoggingObject)
        policy = RandomPolicy(seed) if seed % 2 else EagerInformPolicy(seed=seed)
        result = run_system(
            system, policy, system_type, max_steps=6000, resolve_deadlocks=True
        )
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems
