"""Hypothesis properties of the core sequence machinery.

A pure random generator of *simple behaviors* (arbitrary interleavings
respecting only the simple-database constraints — wilder than anything
the drivers produce, including wrong read values, aborts of running
transactions and unreported completions) feeds invariants of the
projection operators, the visibility relations and the serialization
graph.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ROOT,
    Abort,
    Access,
    Commit,
    Create,
    ObjectName,
    ReadOp,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    RWSpec,
    StatusIndex,
    SystemType,
    TransactionName,
    WriteOp,
    build_serialization_graph,
    check_simple_behavior,
    clean_projection,
    serial_projection,
    visible_projection,
)
from repro.core.events import AffectsRelation
from repro.core.rw_semantics import OK


def random_simple_behavior(seed: int, steps: int = 40):
    """Generate a random simple behavior plus its system type."""
    rng = random.Random(seed)
    system = SystemType(
        {ObjectName("x"): RWSpec(initial=0), ObjectName("y"): RWSpec(initial=0)}
    )
    behavior = []
    requested, created, completed, reported = set(), set(), set(), set()
    commit_requested = {}
    name_counter = 0

    def new_name():
        nonlocal name_counter
        name_counter += 1
        candidates = [t for t in created if not system.is_access(t)] + [ROOT]
        parent = rng.choice(candidates)
        return parent.child(f"n{name_counter}")

    for _ in range(steps):
        options = []
        fresh = new_name()
        options.append(("request", fresh))
        for t in requested - created - completed:
            options.append(("create", t))
        for t in created - set(commit_requested):
            options.append(("request_commit", t))
        for t in set(commit_requested) - completed:
            options.append(("commit", t))
        for t in requested - completed:
            options.append(("abort", t))
        for t in completed - reported:
            options.append(("report", t))
        kind, t = rng.choice(options)
        if kind == "request":
            requested.add(t)
            # half the fresh leaves become accesses
            if rng.random() < 0.5 and not any(
                a.is_ancestor_of(t) for a in system.all_accesses()
            ):
                obj = ObjectName(rng.choice(["x", "y"]))
                op = WriteOp(rng.randrange(3)) if rng.random() < 0.5 else ReadOp()
                system.register_access(t, Access(obj, op))
            behavior.append(RequestCreate(t))
        elif kind == "create":
            created.add(t)
            behavior.append(Create(t))
        elif kind == "request_commit":
            if system.is_access(t):
                op = system.access(t).op
                if isinstance(op, WriteOp):
                    value = OK
                else:
                    value = rng.randrange(3)  # often wrong: that's the point
            else:
                value = "done"
            commit_requested[t] = value
            behavior.append(RequestCommit(t, value))
        elif kind == "commit":
            completed.add(t)
            behavior.append(Commit(t))
        elif kind == "abort":
            completed.add(t)
            behavior.append(Abort(t))
        elif kind == "report":
            reported.add(t)
            if t in commit_requested and Commit(t) in behavior:
                behavior.append(ReportCommit(t, commit_requested[t]))
            else:
                behavior.append(ReportAbort(t))
    return tuple(behavior), system


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_generator_produces_simple_behaviors(seed):
    behavior, system = random_simple_behavior(seed)
    assert check_simple_behavior(behavior, system) == []


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_projection_idempotence(seed):
    behavior, system = random_simple_behavior(seed)
    serial = serial_projection(behavior)
    assert serial_projection(serial) == serial
    clean = clean_projection(serial)
    assert clean_projection(clean) == clean


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_visible_subset_of_clean(seed):
    # visible to T0 requires full commit chains; clean only requires no
    # aborted ancestor.  Commits and aborts are disjoint, so visible(T0)
    # events are always clean.
    behavior, system = random_simple_behavior(seed)
    visible = visible_projection(behavior, ROOT)
    clean = set(clean_projection(behavior))
    for action in visible:
        assert action in clean


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_visibility_transitive(seed):
    behavior, system = random_simple_behavior(seed)
    index = StatusIndex(behavior)
    mentioned = list(index.create_requested | {ROOT})[:8]
    for a in mentioned:
        for b in mentioned:
            for c in mentioned:
                if index.is_visible(a, b) and index.is_visible(b, c):
                    assert index.is_visible(a, c), (a, b, c)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_prefix_graph_is_subgraph(seed):
    behavior, system = random_simple_behavior(seed)
    full = {
        (e.source, e.target, e.kind)
        for e in _edges(build_serialization_graph(behavior, system))
    }
    for cut in range(0, len(behavior), 9):
        prefix_edges = {
            (e.source, e.target, e.kind)
            for e in _edges(build_serialization_graph(behavior[:cut], system))
        }
        assert prefix_edges <= full, cut


def _edges(graph):
    return list(graph.edges())


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_full_acyclic_implies_prefix_acyclic(seed):
    behavior, system = random_simple_behavior(seed)
    if build_serialization_graph(behavior, system).is_acyclic():
        for cut in range(0, len(behavior), 7):
            assert build_serialization_graph(behavior[:cut], system).is_acyclic()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_affects_pairs_point_forward(seed):
    behavior, system = random_simple_behavior(seed)
    affects = AffectsRelation(behavior)
    for i, j in affects.pairs():
        assert i < j


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000))
def test_lemma5_rw_and_general_arv_agree(seed):
    """Lemma 5 as a property: the concrete RW definition of appropriate
    return values coincides with the general (replay) definition on
    arbitrary simple behaviors over read/write objects."""
    from repro import has_appropriate_return_values, has_appropriate_return_values_rw

    behavior, system = random_simple_behavior(seed)
    assert has_appropriate_return_values(
        behavior, system
    ) == has_appropriate_return_values_rw(behavior, system)
