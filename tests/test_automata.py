"""Tests for the I/O automaton base framework and composition."""

import pytest

from repro import Commit, Create, IOAutomaton, RequestCreate
from repro.automata.base import behavior_of, replay_schedule
from repro.automata.composition import Composition

from conftest import T


class Toggle(IOAutomaton):
    """A toy automaton: input CREATE(t) sets a flag, output COMMIT(t) clears it."""

    def __init__(self, name: str, transaction):
        self.name = name
        self.transaction = transaction

    def is_input(self, action):
        return isinstance(action, Create) and action.transaction == self.transaction

    def is_output(self, action):
        return isinstance(action, Commit) and action.transaction == self.transaction

    def initial_state(self):
        return False

    def enabled(self, state, action):
        if self.is_input(action):
            return True
        return state  # commit only when flag set

    def effect(self, state, action):
        if isinstance(action, Create):
            return True
        return False

    def enabled_outputs(self, state):
        if state:
            yield Commit(self.transaction)


class Listener(Toggle):
    """Same transaction's COMMIT as an *input* (for composition tests)."""

    def is_input(self, action):
        return isinstance(action, Commit) and action.transaction == self.transaction

    def is_output(self, action):
        return False

    def enabled(self, state, action):
        return True

    def effect(self, state, action):
        return True

    def enabled_outputs(self, state):
        return iter(())


class TestBase:
    def test_replay_valid_schedule(self):
        automaton = Toggle("a", T("t"))
        execution = replay_schedule(automaton, [Create(T("t")), Commit(T("t"))])
        assert execution.final_state is False
        assert execution.schedule() == (Create(T("t")), Commit(T("t")))

    def test_replay_rejects_disabled_output(self):
        automaton = Toggle("a", T("t"))
        with pytest.raises(ValueError):
            replay_schedule(automaton, [Commit(T("t"))])

    def test_replay_rejects_foreign_action(self):
        automaton = Toggle("a", T("t"))
        with pytest.raises(ValueError):
            replay_schedule(automaton, [RequestCreate(T("u"))])

    def test_non_strict_replay_skips_enabledness(self):
        automaton = Toggle("a", T("t"))
        execution = replay_schedule(automaton, [Commit(T("t"))], strict=False)
        assert execution.final_state is False

    def test_behavior_of_projects(self):
        automaton = Toggle("a", T("t"))
        schedule = [Create(T("t")), Create(T("u")), Commit(T("t"))]
        assert behavior_of(automaton, schedule) == (
            Create(T("t")),
            Commit(T("t")),
        )


class TestComposition:
    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            Composition([Toggle("a", T("t")), Toggle("a", T("u"))])

    def test_shared_action_steps_both(self):
        toggle = Toggle("toggle", T("t"))
        listener = Listener("listener", T("t"))
        system = Composition([toggle, listener])
        state = system.initial_state()
        state = system.effect(state, Create(T("t")))
        assert state["toggle"] is True
        assert state["listener"] is False  # listener ignores CREATE
        state = system.effect(state, Commit(T("t")))
        assert state["toggle"] is False
        assert state["listener"] is True  # listener heard the commit

    def test_output_classification(self):
        toggle = Toggle("toggle", T("t"))
        listener = Listener("listener", T("t"))
        system = Composition([toggle, listener])
        # COMMIT(t) is an output of toggle, so an output of the composite
        assert system.is_output(Commit(T("t")))
        assert not system.is_input(Commit(T("t")))
        # CREATE(t) is only an input
        assert system.is_input(Create(T("t")))

    def test_enabled_outputs_aggregated(self):
        toggle = Toggle("toggle", T("t"))
        system = Composition([toggle])
        state = system.initial_state()
        assert list(system.enabled_outputs(state)) == []
        state = system.effect(state, Create(T("t")))
        assert list(system.enabled_outputs(state)) == [Commit(T("t"))]

    def test_enabled_checks_owner(self):
        toggle = Toggle("toggle", T("t"))
        system = Composition([toggle])
        state = system.initial_state()
        assert not system.enabled(state, Commit(T("t")))
        state = system.effect(state, Create(T("t")))
        assert system.enabled(state, Commit(T("t")))

    def test_duplicate_output_owner_rejected_dynamically(self):
        system = Composition([Toggle("a", T("t")), Toggle("b", T("t"))])
        with pytest.raises(ValueError):
            system.enabled(system.initial_state(), Commit(T("t")))
