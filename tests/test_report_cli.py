"""Tests for the report renderers and the command-line interface."""

import json
from pathlib import Path

import pytest

from repro import (
    build_serialization_graph,
    certificate_report,
    certify,
    serialization_graph_to_dot,
)
from repro.cli import main
from repro.report import behavior_summary

from conftest import lost_update_behavior, serial_two_txn_behavior


class TestReport:
    def test_certificate_report_certified(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system)
        text = certificate_report(certificate, behavior, system, witness_preview=5)
        assert "CERTIFIED" in text
        assert "conflict edge" in text
        assert "witness serial behavior" in text

    def test_certificate_report_rejected(self):
        behavior, system = lost_update_behavior()
        certificate = certify(behavior, system)
        text = certificate_report(certificate, behavior, system)
        assert "NOT certified" in text
        assert "cycle" in text

    def test_behavior_summary(self):
        behavior, system = serial_two_txn_behavior()
        lines = behavior_summary(behavior, system)
        assert any("committed: 4" in line for line in lines)

    def test_dot_output(self):
        behavior, system = lost_update_behavior()
        graph = build_serialization_graph(behavior, system)
        dot = serialization_graph_to_dot(graph)
        assert dot.startswith("digraph SG {")
        assert dot.rstrip().endswith("}")
        assert "conflict" in dot
        assert "children of T0" in dot


class TestCLI:
    def test_demo_certifies(self, capsys):
        code = main(["demo", "--seed", "1", "--transactions", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "CERTIFIED" in output

    def test_demo_undo(self, capsys):
        code = main(["demo", "--algorithm", "undo", "--seed", "2"])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out

    def test_record_then_audit(self, tmp_path, capsys):
        case = tmp_path / "run.json"
        code = main(["record", "--seed", "4", "-o", str(case)])
        assert code == 0
        assert case.exists()
        blob = json.loads(case.read_text())
        assert blob["format"] == "repro-case-v1"
        capsys.readouterr()
        code = main(["audit", str(case)])
        output = capsys.readouterr().out
        assert code == 0
        assert "CERTIFIED" in output

    def test_audit_writes_dot(self, tmp_path, capsys):
        case = tmp_path / "run.json"
        dot = tmp_path / "graph.dot"
        main(["record", "--seed", "4", "-o", str(case)])
        capsys.readouterr()
        code = main(["audit", str(case), "--dot", str(dot)])
        assert code == 0
        assert dot.read_text().startswith("digraph SG {")

    def test_audit_rejects_tampered_case(self, tmp_path, capsys):
        """Corrupt a recorded read value: the audit must fail with exit 2."""
        case = tmp_path / "run.json"
        main(["record", "--seed", "6", "--transactions", "4", "-o", str(case)])
        capsys.readouterr()
        blob = json.loads(case.read_text())
        # find a committed read response and corrupt its value
        reads = {
            tuple(entry["transaction"])
            for entry in blob["system_type"]["accesses"]
            if entry["operation"]["op"] == "ReadOp"
        }
        tampered = False
        for event in blob["behavior"]:
            if (
                event["kind"] in ("request_commit", "report_commit")
                and tuple(event["transaction"]) in reads
            ):
                event["value"] = {"t": "scalar", "v": 987654}
                tampered = True
        assert tampered, "expected at least one read in the recorded run"
        case.write_text(json.dumps(blob))
        code = main(["audit", str(case), "--oracle"])
        output = capsys.readouterr().out
        assert code == 2
        assert "NOT certified" in output

    def test_abort_rate_option(self, capsys):
        code = main(["demo", "--seed", "3", "--abort-rate", "0.2"])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out


class TestOnlineEngine:
    def test_audit_online_engine(self, tmp_path, capsys):
        code = main(["record", "--seed", "4", "-o", str(tmp_path / "r.json")])
        assert code == 0
        capsys.readouterr()
        code = main(["audit", str(tmp_path / "r.json"), "--engine", "online"])
        output = capsys.readouterr().out
        assert code == 0
        assert "online engine" in output

    def test_audit_online_engine_rejects(self, tmp_path, capsys):
        import json

        case = tmp_path / "r.json"
        main(["record", "--seed", "6", "--transactions", "4", "-o", str(case)])
        capsys.readouterr()
        blob = json.loads(case.read_text())
        reads = {
            tuple(entry["transaction"])
            for entry in blob["system_type"]["accesses"]
            if entry["operation"]["op"] == "ReadOp"
        }
        for event in blob["behavior"]:
            if (
                event["kind"] in ("request_commit", "report_commit")
                and tuple(event["transaction"]) in reads
            ):
                event["value"] = {"t": "scalar", "v": 987654}
        case.write_text(json.dumps(blob))
        code = main(["audit", str(case), "--engine", "online"])
        output = capsys.readouterr().out
        assert code == 2
        assert "NOT certified" in output

    def test_demo_tree_option(self, capsys):
        code = main(["demo", "--seed", "1", "--transactions", "3", "--tree"])
        output = capsys.readouterr().out
        assert code == 0
        assert "transaction tree:" in output
        assert "committed" in output
