"""Tests for post-run trace analysis."""

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    WorkloadConfig,
    generate_workload,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.analysis import analyze_trace

from conftest import BehaviorBuilder, T, rw_system


class TestHandBuilt:
    def test_lifecycle_positions(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")          # events 0 (request), 1 (create)
        b.write(t, "w", "x", 1)       # 2,3 request/create; 4 respond; 5 commit; 6 report
        b.commit(t)                   # 7 request_commit; 8 commit; 9 report
        analysis = analyze_trace(b.build(), system)
        top = analysis.transactions[t]
        assert top.requested_at == 0
        assert top.created_at == 1
        assert top.completed_at == 8
        assert top.outcome == "committed"
        assert top.lifetime == 8
        access = analysis.transactions[t.child("w")]
        assert access.is_access
        assert access.response_latency == 1
        assert access.outcome == "committed"

    def test_aborted_outcome(self):
        from repro import Abort, RequestCreate

        system = rw_system("x")
        b = BehaviorBuilder(system)
        b.emit(RequestCreate(T("t")), Abort(T("t")))
        analysis = analyze_trace(b.build(), system)
        assert analysis.transactions[T("t")].outcome == "aborted"
        assert analysis.aborted()[0].transaction == T("t")

    def test_incomplete(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        b.begin_top("t")
        analysis = analyze_trace(b.build(), system)
        assert analysis.transactions[T("t")].outcome == "incomplete"
        assert analysis.transactions[T("t")].lifetime is None

    def test_tree_lines(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        b.commit(t)
        analysis = analyze_trace(b.build(), system)
        lines = analysis.tree_lines(ROOT)
        assert lines[0].startswith("t: committed")
        assert any(line.strip().startswith("w: committed") for line in lines)


class TestOnRuns:
    def test_driver_run_metrics(self):
        system_type, programs = generate_workload(
            WorkloadConfig(seed=4, top_level=4, objects=2)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=4), system_type, resolve_deadlocks=True
        )
        analysis = analyze_trace(result.behavior, system_type)
        assert len(analysis.committed()) == result.stats.committed
        assert len(analysis.aborted()) == result.stats.aborted
        latency = analysis.mean_access_latency()
        assert latency is not None and latency >= 1
        lifetime = analysis.mean_commit_lifetime()
        assert lifetime is not None and lifetime > 0
        # every access summary belongs to a registered access
        for summary in analysis.accesses():
            assert system_type.is_access(summary.transaction)

    def test_children_of_root(self):
        system_type, programs = generate_workload(
            WorkloadConfig(seed=4, top_level=4, objects=2)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=4), system_type, resolve_deadlocks=True
        )
        analysis = analyze_trace(result.behavior, system_type)
        top_level = analysis.children_of(ROOT)
        assert len(top_level) == 4
