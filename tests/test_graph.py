"""Tests for the small labelled digraph utility."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.graph import CycleError, Digraph


def chain(n: int) -> Digraph:
    graph: Digraph[int] = Digraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


class TestBasics:
    def test_nodes_and_edges(self):
        graph: Digraph[str] = Digraph()
        graph.add_edge("a", "b", "conflict")
        graph.add_edge("a", "b", "precedes")
        graph.add_node("c")
        assert set(graph.nodes()) == {"a", "b", "c"}
        assert graph.edge_count() == 1
        assert graph.edge_labels("a", "b") == frozenset({"conflict", "precedes"})
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")
        assert "c" in graph
        assert len(graph) == 3

    def test_successors_predecessors(self):
        graph = chain(3)
        assert graph.successors(0) == (1,)
        assert graph.predecessors(2) == (1,)
        assert graph.successors(2) == ()


class TestCycles:
    def test_acyclic_chain(self):
        assert chain(10).is_acyclic()
        assert chain(10).find_cycle() is None

    def test_self_loop(self):
        graph: Digraph[int] = Digraph()
        graph.add_edge(1, 1)
        cycle = graph.find_cycle()
        assert cycle == [1, 1]

    def test_simple_cycle(self):
        graph = chain(4)
        graph.add_edge(3, 0)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # all consecutive pairs are edges
        for src, dst in zip(cycle, cycle[1:]):
            assert graph.has_edge(src, dst)

    def test_cycle_in_disconnected_component(self):
        graph = chain(3)
        graph.add_edge(10, 11)
        graph.add_edge(11, 10)
        assert not graph.is_acyclic()


class TestToposort:
    def test_respects_edges(self):
        graph: Digraph[str] = Digraph()
        graph.add_edge("a", "c")
        graph.add_edge("b", "c")
        graph.add_edge("c", "d")
        order = graph.topological_sort()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_raises_on_cycle(self):
        graph = chain(3)
        graph.add_edge(2, 0)
        with pytest.raises(CycleError):
            graph.topological_sort()

    def test_isolated_nodes_included(self):
        graph: Digraph[int] = Digraph()
        graph.add_node(5)
        assert graph.topological_sort() == [5]

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
    def test_toposort_consistency(self, edges):
        graph: Digraph[int] = Digraph()
        for src, dst in edges:
            graph.add_edge(src, dst)
        try:
            order = graph.topological_sort()
        except CycleError as exc:
            # the reported cycle must be a real cycle
            cycle = exc.cycle
            assert cycle[0] == cycle[-1]
            for src, dst in zip(cycle, cycle[1:]):
                assert graph.has_edge(src, dst)
            return
        position = {node: i for i, node in enumerate(order)}
        for src, dst, _ in graph.edges():
            assert position[src] < position[dst]


class TestTraversal:
    def test_reachable_from(self):
        graph = chain(4)
        assert graph.reachable_from(1) == {2, 3}
        assert graph.reachable_from(3) == set()

    def test_reachable_with_cycle_includes_start(self):
        graph: Digraph[int] = Digraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.reachable_from(0) == {0, 1}

    def test_subgraph(self):
        graph = chain(5)
        sub = graph.subgraph([1, 2, 3])
        assert set(sub.nodes()) == {1, 2, 3}
        assert sub.edge_count() == 2

    def test_to_networkx(self):
        graph: Digraph[str] = Digraph()
        graph.add_edge("a", "b", "conflict")
        nx_graph = graph.to_networkx()
        assert nx_graph.has_edge("a", "b")
        assert nx_graph.edges["a", "b"]["kinds"] == ["conflict"]
