"""Tests for SG-cycle provenance (:mod:`repro.core.explain`).

The acceptance criterion: over 100+ randomly generated rejected
behaviors, every edge of the latched cycle must carry witnesses
consistent with the batch ``conflict_pairs``/``precedes_pairs``
relations — a conflict witness names an ordered operation pair that the
batch enumeration also collapses onto the same sibling edge, and a
precedes witness reproduces exactly the report/request positions the
batch relation uses.
"""

import json

import pytest

from repro import (
    HistoryIndex,
    certify,
    conflict_pairs,
    dump_case,
    explain_behavior,
    explain_cycle,
    explain_edge,
    precedes_pairs,
    serialization_graph_to_dot,
)
from repro.cli import main
from repro.report import explanation_report

from conftest import BehaviorBuilder, T, rw_system
from test_online import random_contended_behavior


def rejected_cases(wanted, max_seed=2000):
    """``wanted`` randomly generated behaviors whose certification
    latches an SG cycle, each paired with its certificate."""
    cases = []
    for seed in range(max_seed):
        behavior, system = random_contended_behavior(seed)
        certificate = certify(behavior, system, construct_witness=False)
        if not certificate.certified and certificate.cycle is not None:
            cases.append((behavior, system, certificate))
            if len(cases) >= wanted:
                return cases
    raise AssertionError(
        f"only {len(cases)} rejected seeds in the first {max_seed}"
    )


class TestWitnessConsistency:
    def test_hundred_rejected_seeds_have_consistent_witnesses(self):
        """Every cycle edge on 100+ rejected seeds is witnessed, and the
        witnesses agree with the batch conflict/precedes relations."""
        cases = rejected_cases(100)
        assert len(cases) >= 100
        for behavior, system, certificate in cases:
            index = HistoryIndex(behavior, system)
            explanation = explain_cycle(
                behavior, system, certificate.cycle, index=index
            )
            assert explanation.complete, certificate.cycle
            batch_conflicts = {
                (edge.source, edge.target)
                for edge in conflict_pairs(behavior, system)
            }
            batch_precedes = {
                (edge.source, edge.target)
                for edge in precedes_pairs(behavior)
            }
            parent, nodes = certificate.cycle
            assert explanation.parent == parent
            assert explanation.edge_pairs() == tuple(
                (nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)
            )
            for edge in explanation.edges:
                for witness in edge.conflicts:
                    # the witnessed pair collapses onto this very edge
                    # in the batch relation
                    assert (edge.source, edge.target) in batch_conflicts
                    assert edge.source.is_ancestor_of(witness.first)
                    assert edge.target.is_ancestor_of(witness.second)
                    assert witness.first_position <= witness.second_position
                    # and the named operations really fail to commute
                    assert index.conflict_cache.conflicts(
                        system.spec(witness.obj),
                        witness.first_op,
                        witness.first_value,
                        witness.second_op,
                        witness.second_value,
                    )
                for witness in edge.precedes:
                    assert (edge.source, edge.target) in batch_precedes
                    assert witness.report_position < witness.request_position

    def test_edges_without_witness_claims_match_graph(self):
        """The explanation only claims edge kinds the graph carries."""
        behavior, system, certificate = rejected_cases(1)[0]
        explanation = explain_cycle(behavior, system, certificate.cycle)
        graph_edges = {
            (edge.source, edge.target): set()
            for edge in certificate.graph.edges()
        }
        for edge in certificate.graph.edges():
            graph_edges[(edge.source, edge.target)].add(edge.kind)
        for edge in explanation.edges:
            assert set(edge.kinds) <= graph_edges[(edge.source, edge.target)]


class TestExplainAPI:
    def test_explain_behavior_none_on_certified(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        b.commit(t)
        assert explain_behavior(b.build(), system) is None

    def test_explain_behavior_matches_explain_cycle(self):
        behavior, system, _ = rejected_cases(1)[0]
        result = explain_behavior(behavior, system)
        assert result is not None
        explanation, graph = result
        assert graph.find_cycle() is not None
        assert explanation.complete

    def test_max_witnesses_caps_per_object(self):
        behavior, system, certificate = rejected_cases(1)[0]
        capped = explain_cycle(
            behavior, system, certificate.cycle, max_witnesses=1
        )
        assert capped.complete
        full = explain_cycle(behavior, system, certificate.cycle)
        objects = {w.obj for edge in full.edges for w in edge.conflicts}
        for edge in capped.edges:
            per_object = {}
            for witness in edge.conflicts:
                per_object[witness.obj] = per_object.get(witness.obj, 0) + 1
            assert all(count <= 1 for count in per_object.values()), objects

    def test_non_siblings_rejected(self):
        behavior, system, _ = rejected_cases(1)[0]
        index = HistoryIndex(behavior, system)
        with pytest.raises(ValueError, match="not siblings"):
            explain_edge(index, system, T("t0"), T("t0", "r"))
        with pytest.raises(ValueError, match="not siblings"):
            explain_edge(index, system, T("t0"), T("t0"))

    def test_index_for_other_system_type_rejected(self):
        behavior, system, certificate = rejected_cases(1)[0]
        other = rw_system("o0", "o1")
        index = HistoryIndex(behavior, system)
        parent, nodes = certificate.cycle
        with pytest.raises(ValueError, match="different system type"):
            explain_edge(index, other, nodes[0], nodes[1])

    def test_to_dict_is_json_serializable(self):
        behavior, system, certificate = rejected_cases(1)[0]
        explanation = explain_cycle(behavior, system, certificate.cycle)
        blob = json.loads(json.dumps(explanation.to_dict(), default=str))
        assert blob["complete"] is True
        assert len(blob["edges"]) == len(explanation.edges)
        for edge in blob["edges"]:
            assert edge["conflicts"] or edge["precedes"]


class TestReportRendering:
    def test_explanation_report_names_operation_pairs(self):
        behavior, system, certificate = rejected_cases(1)[0]
        explanation = explain_cycle(behavior, system, certificate.cycle)
        text = explanation_report(explanation)
        assert "witnesses complete" in text
        assert "edge " in text and "conflict " in text

    def test_dot_annotates_cycle_edges(self):
        behavior, system, _ = rejected_cases(1)[0]
        explanation, graph = explain_behavior(behavior, system)
        plain = serialization_graph_to_dot(graph)
        annotated = serialization_graph_to_dot(graph, explanation)
        assert "penwidth=2.5" not in plain
        assert "penwidth=2.5" in annotated
        witness = explanation.edges[0].conflicts[0] if (
            explanation.edges[0].conflicts
        ) else None
        if witness is not None:
            assert str(witness.obj) in annotated


class TestExplainCLI:
    def write_case(self, tmp_path, behavior, system):
        path = tmp_path / "case.json"
        path.write_text(dump_case(behavior, system))
        return path

    def test_explain_rejected_case(self, tmp_path, capsys):
        behavior, system, _ = rejected_cases(1)[0]
        case = self.write_case(tmp_path, behavior, system)
        json_out = tmp_path / "explanation.json"
        dot_out = tmp_path / "annotated.dot"
        code = main(
            ["explain", str(case), "--json", str(json_out), "--dot", str(dot_out)]
        )
        output = capsys.readouterr().out
        assert code == 2
        assert "witnesses complete" in output
        blob = json.loads(json_out.read_text())
        assert blob["complete"] is True
        assert dot_out.read_text().startswith("digraph SG {")
        assert "penwidth=2.5" in dot_out.read_text()

    def test_explain_certified_case_exits_zero(self, tmp_path, capsys):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        b.commit(t)
        case = self.write_case(tmp_path, b.build(), system)
        code = main(["explain", str(case)])
        output = capsys.readouterr().out
        assert code == 0
        assert "acyclic" in output.lower() or "no cycle" in output.lower()
