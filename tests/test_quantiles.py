"""Tests for streaming quantile estimation (log buckets and P²).

The load-bearing guarantee is the acceptance criterion from the
observability issue: quantiles read off :data:`LATENCY_BUCKETS`
histograms stay within 5% relative error of the exact nearest-rank
percentile on a 10k-sample reference distribution.  The geometric
layout promises ``sqrt(growth) - 1`` (~3.9% at growth 1.08), so the
tests check the 5% budget with real slack behind it.
"""

import math
import random

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    P2Quantile,
    bucket_quantile,
    latency_histogram,
    log_buckets,
)
from repro.obs.metrics import Histogram


def exact_quantile(samples, q):
    """The nearest-rank quantile: the ceil(q*n)-th smallest sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def latency_samples(seed, count=10_000):
    """A latency-shaped reference sample: lognormal around 1 ms."""
    rng = random.Random(seed)
    return [
        min(max(rng.lognormvariate(math.log(1e-3), 1.2), 2e-6), 9.0)
        for _ in range(count)
    ]


class TestLogBuckets:
    def test_geometric_progression_covers_range(self):
        bounds = log_buckets(1e-6, 10.0, growth=1.08)
        assert bounds[0] == 1e-6
        assert bounds[-1] >= 10.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(1.08) for r in ratios)

    def test_default_layout_is_log_spaced_and_bounded(self):
        assert LATENCY_BUCKETS == log_buckets(1e-6, 10.0, growth=1.08)
        # ~200 buckets: cheap enough to attach per session
        assert 150 < len(LATENCY_BUCKETS) < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, growth=1.0)


class TestBucketQuantile:
    def test_empty_sample_is_none(self):
        assert bucket_quantile((1.0, 2.0), [0, 0, 0], 0, 0.5) is None

    def test_quantile_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), [1, 0], 1, -0.1)
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), [1, 0], 1, 1.5)

    def test_overflow_bucket_uses_observed_max(self):
        # every sample above the last bound: only the max is honest
        estimate = bucket_quantile((1.0, 2.0), [0, 0, 5], 5, 0.99, maximum=7.5)
        assert estimate == 7.5

    def test_estimate_clamped_to_observed_extremes(self):
        histogram = Histogram(buckets=LATENCY_BUCKETS)
        histogram.observe(3e-3)
        assert histogram.quantile(0.0) == 3e-3
        assert histogram.quantile(1.0) == 3e-3

    def test_reference_accuracy_10k_samples(self):
        """p50/p90/p95/p99 within 5% of exact on 10k latency samples."""
        for seed in (1, 7, 42):
            samples = latency_samples(seed)
            histogram = Histogram(buckets=LATENCY_BUCKETS)
            for value in samples:
                histogram.observe(value)
            for q in (0.50, 0.90, 0.95, 0.99):
                exact = exact_quantile(samples, q)
                estimate = histogram.quantile(q)
                relative = abs(estimate - exact) / exact
                assert relative <= 0.05, (seed, q, exact, estimate)

    def test_uniform_distribution_accuracy(self):
        """The bound is distribution-free: uniform samples obey it too."""
        rng = random.Random(99)
        samples = [rng.uniform(1e-4, 1e-1) for _ in range(10_000)]
        histogram = Histogram(buckets=LATENCY_BUCKETS)
        for value in samples:
            histogram.observe(value)
        for q in (0.50, 0.95, 0.99):
            exact = exact_quantile(samples, q)
            assert abs(histogram.quantile(q) - exact) / exact <= 0.05


class TestHistogramQuantileIntegration:
    def test_snapshot_carries_percentile_keys(self):
        histogram = Histogram(buckets=LATENCY_BUCKETS)
        snapshot = histogram.snapshot()
        assert snapshot["p50"] is None  # empty histogram
        histogram.observe(2e-3)
        snapshot = histogram.snapshot()
        for key in ("p50", "p95", "p99"):
            assert snapshot[key] == pytest.approx(2e-3)

    def test_latency_histogram_wires_latency_buckets(self):
        registry = MetricsRegistry()
        histogram = latency_histogram(registry, "stream.latency.feed_to_verdict")
        assert histogram.buckets == LATENCY_BUCKETS
        # get-or-create: repeated wiring returns the same instrument
        assert latency_histogram(
            registry, "stream.latency.feed_to_verdict"
        ) is histogram
        histogram.observe(1e-3)
        snapshot = registry.snapshot()["histograms"]
        assert snapshot["stream.latency.feed_to_verdict"]["count"] == 1


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_none(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.observe(value)
        assert estimator.value() == 3.0  # exact median of {1, 3, 5}

    def test_converges_on_uniform(self):
        rng = random.Random(13)
        for q in (0.5, 0.95):
            estimator = P2Quantile(q)
            for _ in range(20_000):
                estimator.observe(rng.random())
            assert estimator.value() == pytest.approx(q, abs=0.02)
        assert estimator.count == 20_000

    def test_tracks_lognormal_median(self):
        rng = random.Random(23)
        estimator = P2Quantile(0.5)
        samples = [rng.lognormvariate(0.0, 1.0) for _ in range(20_000)]
        for value in samples:
            estimator.observe(value)
        exact = exact_quantile(samples, 0.5)
        assert abs(estimator.value() - exact) / exact <= 0.05
