"""Tests for the Theorem 8/19 certifier, witness construction and validation."""

import pytest

from repro import (
    ROOT,
    Abort,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    SiblingOrder,
    WitnessError,
    build_witness,
    certify,
    is_serially_correct_for_root,
    project_transaction,
    serial_projection,
    validate_serial_behavior,
)

from conftest import (
    BehaviorBuilder,
    T,
    blind_write_cycle_behavior,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)


class TestCertify:
    def test_serial_behavior_certified(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system)
        assert certificate.certified
        assert certificate.has_appropriate_return_values
        assert certificate.graph_is_acyclic
        assert certificate.witness is not None
        assert certificate.witness_problems == []
        assert "CERTIFIED" in certificate.explain()

    def test_lost_update_rejected_on_cycle(self):
        behavior, system = lost_update_behavior()
        certificate = certify(behavior, system)
        assert not certificate.certified
        assert certificate.has_appropriate_return_values
        assert not certificate.graph_is_acyclic
        assert "cycle" in certificate.explain()

    def test_dirty_read_rejected_on_arv(self):
        behavior, system = dirty_read_behavior()
        certificate = certify(behavior, system)
        assert not certificate.certified
        assert certificate.arv_violations
        assert "return values" in certificate.explain()

    def test_blind_write_cycle_rejected(self):
        # sufficiency, not necessity: rejected here, accepted by the oracle
        behavior, system = blind_write_cycle_behavior()
        assert not is_serially_correct_for_root(behavior, system)

    def test_empty_behavior_certified(self):
        system = rw_system("x")
        certificate = certify((), system)
        assert certificate.certified
        assert certificate.witness == ()

    def test_interleaved_compatible_reads_certified(self):
        # two concurrent readers: no conflicts, both orders fine
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.read(t1, "r", "x", 0)
        b.read(t2, "r", "x", 0)
        b.commit(t2)
        b.commit(t1)
        certificate = certify(b.build(), system)
        assert certificate.certified
        assert certificate.witness_problems == []


class TestWitness:
    def test_witness_preserves_visible_projections(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system)
        witness = certificate.witness
        serial = serial_projection(behavior)
        for transaction in (ROOT, T("t1"), T("t2"), T("t1", "w"), T("t2", "r")):
            assert project_transaction(witness, transaction) == project_transaction(
                serial, transaction
            )

    def test_witness_is_valid_serial_behavior(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system)
        assert validate_serial_behavior(certificate.witness, system) == []

    def test_witness_serialises_interleaved_run(self):
        # concurrent siblings with a conflict in one direction only
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 3)
        b.read(t2, "r", "x", 3)
        b.commit(t1)
        b.commit(t2)
        certificate = certify(b.build(), system)
        assert certificate.certified and not certificate.witness_problems
        witness = certificate.witness
        # in the witness t1 runs entirely before t2's access
        w_commit = witness.index(Commit(T("t1", "w")))
        r_create = witness.index(Create(T("t2", "r")))
        assert w_commit < r_create

    def test_witness_with_aborted_child(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 1)
        b.commit(t1)
        t2 = T("t2")
        b.emit(RequestCreate(t2))
        b.abort(t2)
        certificate = certify(b.build(), system)
        assert certificate.certified and not certificate.witness_problems
        witness = certificate.witness
        # in the serial witness, t2 is aborted without ever being created
        assert Abort(t2) in witness
        assert Create(t2) not in witness

    def test_witness_with_committed_but_unreported_child(self):
        # a committed top-level transaction whose report never reached T0
        # must still appear in the witness (its effects are visible)
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        access = b.write(t1, "w", "x", 1)
        b.emit(RequestCommit(t1, "done"), Commit(t1))  # no REPORT_COMMIT
        certificate = certify(b.build(), system)
        assert certificate.certified and not certificate.witness_problems
        assert Commit(access) in certificate.witness

    def test_bad_order_yields_invalid_witness(self):
        # an order contradicting the conflict direction produces a witness
        # that fails object-legality validation (this is how the oracle
        # prunes wrong orders)
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.read(t2, "r", "x", 1)
        b.commit(t1)
        b.commit(t2)
        serial = serial_projection(b.build())
        bad_order = SiblingOrder(
            {
                ROOT: [T("t2"), T("t1")],
                T("t1"): [T("t1", "w")],
                T("t2"): [T("t2", "r")],
            }
        )
        witness = build_witness(serial, system, bad_order)
        assert validate_serial_behavior(witness, system) != []

    def test_report_for_uncommitted_child_raises(self):
        # a malformed input (report of a commit that never happened) cannot
        # be woven into a serial witness
        system = rw_system("x")
        behavior = (
            RequestCreate(T("t1")),
            Create(T("t1")),
            ReportCommit(T("t1"), "done"),  # no COMMIT(t1) anywhere
        )
        with pytest.raises(WitnessError):
            build_witness(behavior, system, SiblingOrder({ROOT: [T("t1")]}))


class TestValidateSerialBehavior:
    def test_accepts_canonical_serial(self):
        behavior, system = serial_two_txn_behavior()
        # this hand-built behavior is itself serial
        assert validate_serial_behavior(behavior, system) == []

    def test_rejects_sibling_overlap(self):
        system = rw_system("x")
        problems = validate_serial_behavior(
            (
                RequestCreate(T("a")),
                RequestCreate(T("b")),
                Create(T("a")),
                Create(T("b")),  # sibling overlap!
            ),
            system,
        )
        assert any("still active" in p for p in problems)

    def test_rejects_create_without_request(self):
        system = rw_system("x")
        problems = validate_serial_behavior((Create(T("a")),), system)
        assert any("without REQUEST_CREATE" in p for p in problems)

    def test_rejects_abort_after_create(self):
        system = rw_system("x")
        problems = validate_serial_behavior(
            (RequestCreate(T("a")), Create(T("a")), Abort(T("a"))), system
        )
        assert any("never-created" in p for p in problems)

    def test_rejects_commit_before_children_complete(self):
        system = rw_system("x")
        problems = validate_serial_behavior(
            (
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCreate(T("a", "b")),
                RequestCommit(T("a"), 1),
                Commit(T("a")),
            ),
            system,
        )
        assert any("child" in p for p in problems)

    def test_rejects_wrong_report_value(self):
        system = rw_system("x")
        problems = validate_serial_behavior(
            (
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 1),
                Commit(T("a")),
                ReportCommit(T("a"), 2),
            ),
            system,
        )
        assert any("differs" in p for p in problems)

    def test_rejects_illegal_object_sequence(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 5)
        b.read(t, "r", "x", 99)  # wrong read value
        b.commit(t)
        problems = validate_serial_behavior(b.build(), system)
        assert any("illegal" in p for p in problems)

    def test_rejects_report_abort_without_abort(self):
        system = rw_system("x")
        problems = validate_serial_behavior((ReportAbort(T("a")),), system)
        assert any("REPORT_ABORT without" in p for p in problems)


class TestTransactionWellFormedness:
    def test_request_before_parent_created_rejected(self):
        system = rw_system("x")
        problems = validate_serial_behavior(
            (
                RequestCreate(T("a")),
                RequestCreate(T("a", "child")),  # a not yet created!
            ),
            system,
        )
        assert any("before being created" in p for p in problems)

    def test_root_requests_need_no_create(self):
        system = rw_system("x")
        problems = validate_serial_behavior((RequestCreate(T("a")),), system)
        assert problems == []
