"""Tests for operations, perform/operations, serial object well-formedness."""

from repro import (
    Create,
    ObjectName,
    Operation,
    RequestCommit,
    perform,
)
from repro.core.operations import (
    is_serial_object_well_formed,
    operation_payloads,
    operations,
    operations_of_object,
)
from repro.core.rw_semantics import OK, ReadOp, WriteOp

from conftest import BehaviorBuilder, T, rw_system


class TestPerform:
    def test_single(self):
        ops = (Operation(T("a"), 1),)
        assert perform(ops) == (Create(T("a")), RequestCommit(T("a"), 1))

    def test_sequence(self):
        ops = (Operation(T("a"), 1), Operation(T("b"), 2))
        actions = perform(ops)
        assert len(actions) == 4
        assert actions[2] == Create(T("b"))

    def test_empty(self):
        assert perform(()) == ()


class TestOperations:
    def test_extracts_access_request_commits(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.write(t, "w", "x", 9)
        b.commit(t, value="v")
        behavior = b.build()
        ops = operations(behavior, system)
        # the non-access REQUEST_COMMIT(t, "v") is not an operation
        assert ops == (Operation(access, OK),)

    def test_operations_of_object(self):
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        ax = b.write(t, "wx", "x", 1)
        ay = b.write(t, "wy", "y", 2)
        behavior = b.build()
        assert operations_of_object(behavior, ObjectName("x"), system) == (
            Operation(ax, OK),
        )
        assert operations_of_object(behavior, ObjectName("y"), system) == (
            Operation(ay, OK),
        )

    def test_operation_payloads(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        access = b.read(t, "r", "x", 0)
        payloads = operation_payloads((Operation(access, 0),), system)
        assert payloads == ((ReadOp(), 0),)


class TestSerialObjectWellFormed:
    def test_valid_alternation(self):
        behavior = perform((Operation(T("a"), 1), Operation(T("b"), 2)))
        assert is_serial_object_well_formed(behavior)

    def test_valid_trailing_create(self):
        behavior = perform((Operation(T("a"), 1),)) + (Create(T("b")),)
        assert is_serial_object_well_formed(behavior)

    def test_empty_is_well_formed(self):
        assert is_serial_object_well_formed(())

    def test_duplicate_transaction_rejected(self):
        behavior = perform((Operation(T("a"), 1), Operation(T("a"), 2)))
        assert not is_serial_object_well_formed(behavior)

    def test_response_without_create_rejected(self):
        assert not is_serial_object_well_formed((RequestCommit(T("a"), 1),))

    def test_mismatched_response_rejected(self):
        behavior = (Create(T("a")), RequestCommit(T("b"), 1))
        assert not is_serial_object_well_formed(behavior)

    def test_two_creates_in_a_row_rejected(self):
        assert not is_serial_object_well_formed((Create(T("a")), Create(T("b"))))

    def test_foreign_action_rejected(self):
        from repro import Commit

        assert not is_serial_object_well_formed((Commit(T("a")),))
