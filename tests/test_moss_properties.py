"""Property-based tests for M1_X: the invariants behind Lemmas 9-13.

A random environment drives a single Moss locking object through
generic-object well-formed schedules (creates, responses, informs in
arbitrary interleavings); after every step we check:

* Lemma 9: write lockholders form an ancestor chain, and no conflicting
  locks are held by unrelated transactions;
* Lemma 11: when two conflicting accesses have both responded, the
  earlier one is a local orphan or lock-visible to the later one;
* Lemma 12/13 (value characterisation): the value of the least write
  lockholder equals the final value of the writes lock-visible to it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    OK,
    Access,
    Create,
    InformAbort,
    InformCommit,
    MossRWLockingObject,
    ObjectName,
    ReadOp,
    RequestCommit,
    RWSpec,
    SystemType,
    TransactionName,
    WriteOp,
)
from repro.locking.moss import least_write_lockholder, write_lockholders_form_chain
from repro.locking.visibility import is_local_orphan, is_lock_visible

X = ObjectName("x")


def build_access_universe(rng: random.Random, accesses: int):
    """Random accesses nested at depths 1-3 under a handful of top-levels."""
    system = SystemType({X: RWSpec(initial=0)})
    names = []
    for i in range(accesses):
        top = f"t{rng.randrange(3)}"
        path = [top]
        for level in range(rng.randrange(0, 2)):
            path.append(f"u{rng.randrange(2)}")
        path.append(f"a{i}")
        name = TransactionName(tuple(path))
        if rng.random() < 0.5:
            op = WriteOp(rng.randrange(5))
        else:
            op = ReadOp()
        system.register_access(name, Access(X, op))
        names.append(name)
    return system, names


def random_schedule(seed: int, accesses: int = 6, steps: int = 60):
    """Drive M1_X with a random well-formed environment; return the trace."""
    rng = random.Random(seed)
    system, names = build_access_universe(rng, accesses)
    obj = MossRWLockingObject(X, system)
    state = obj.initial_state()
    trace = []
    created = set()
    responded = set()
    informed_commit = set()
    informed_abort = set()

    def candidates():
        actions = []
        for name in names:
            if name not in created:
                actions.append(Create(name))
        actions.extend(obj.enabled_outputs(state))
        # inform commits: any responded access or any internal node whose
        # relevant child was informed (arbitrary order is allowed; Moss
        # only inherits when leaf-to-root order happens to occur)
        for name in responded | {n.parent for n in informed_commit if n.depth > 1}:
            if name not in informed_commit and name not in informed_abort:
                actions.append(InformCommit(X, name))
        for name in names:
            for ancestor in name.ancestors():
                if (
                    not ancestor.is_root
                    and ancestor not in informed_abort
                    and ancestor not in informed_commit
                ):
                    actions.append(InformAbort(X, ancestor))
        return actions

    for _ in range(steps):
        actions = candidates()
        if not actions:
            break
        action = rng.choice(actions)
        state = obj.effect(state, action)
        trace.append(action)
        if isinstance(action, Create):
            created.add(action.transaction)
        elif isinstance(action, RequestCommit):
            responded.add(action.transaction)
        elif isinstance(action, InformCommit):
            informed_commit.add(action.transaction)
        elif isinstance(action, InformAbort):
            informed_abort.add(action.transaction)
    return system, obj, trace


def replay_states(obj, trace):
    state = obj.initial_state()
    yield (), state
    prefix = []
    for action in trace:
        state = obj.effect(state, action)
        prefix.append(action)
        yield tuple(prefix), state


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma9_chain_invariant(seed):
    system, obj, trace = random_schedule(seed)
    for _, state in replay_states(obj, trace):
        assert write_lockholders_form_chain(state)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma9_conflicting_locks_are_related(seed):
    system, obj, trace = random_schedule(seed)
    for _, state in replay_states(obj, trace):
        for writer in state.write_lockholders:
            for holder in state.write_lockholders | state.read_lockholders:
                assert writer.is_related_to(holder)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma11_conflicts_orphan_or_lock_visible(seed):
    system, obj, trace = random_schedule(seed)
    responses = [
        (i, a) for i, a in enumerate(trace) if isinstance(a, RequestCommit)
    ]
    for i, (pos1, first) in enumerate(responses):
        op1 = system.access(first.transaction).op
        for pos2, second in responses[i + 1 :]:
            op2 = system.access(second.transaction).op
            if not (isinstance(op1, WriteOp) or isinstance(op2, WriteOp)):
                continue
            if first.transaction == second.transaction:
                continue
            prefix = trace[:pos2]
            assert is_local_orphan(prefix, X, first.transaction) or is_lock_visible(
                prefix, X, first.transaction, second.transaction
            ), (first, second)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma12_value_reflects_lock_visible_writes(seed):
    system, obj, trace = random_schedule(seed)
    for prefix, state in replay_states(obj, trace):
        for holder in state.write_lockholders:
            if is_local_orphan(prefix, X, holder):
                continue
            visible_writes = [
                action.transaction
                for action in prefix
                if isinstance(action, RequestCommit)
                and isinstance(system.access(action.transaction).op, WriteOp)
                and is_lock_visible(prefix, X, action.transaction, holder)
            ]
            expected = (
                system.access(visible_writes[-1]).op.data if visible_writes else 0
            )
            assert state.value(holder) == expected, (holder, prefix)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_read_values_match_least_writer(seed):
    # the read response value is always the least write lockholder's value
    system, obj, trace = random_schedule(seed)
    state = obj.initial_state()
    for action in trace:
        if isinstance(action, RequestCommit) and isinstance(
            system.access(action.transaction).op, ReadOp
        ):
            assert action.value == state.value(least_write_lockholder(state))
        state = obj.effect(state, action)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_responses_unique_per_access(seed):
    system, obj, trace = random_schedule(seed)
    seen = set()
    for action in trace:
        if isinstance(action, RequestCommit):
            assert action.transaction not in seen
            seen.add(action.transaction)
