"""The docs/TUTORIAL.md walkthrough, runnable: a user-defined data type.

Defines the high-water-mark type, verifies its commutativity table
definitionally, runs it under undo logging next to an untouched RW
object, and certifies the composed system — the modular workflow the
paper's introduction motivates.
"""

from dataclasses import dataclass
from typing import Any, Tuple

import pytest

from repro import (
    DataType,
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    RWSpec,
    UndoLoggingObject,
    certify,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.programs import (
    TransactionProgram,
    op,
    read,
    seq,
    sub,
    system_type_for,
)
from repro.spec.commutativity import (
    exhaustive_prefixes,
    find_commutativity_counterexample,
)


@dataclass(frozen=True)
class Propose:
    value: int

    def __str__(self) -> str:
        return f"propose({self.value})"


@dataclass(frozen=True)
class Peak:
    def __str__(self) -> str:
        return "peak"


class HighWaterMark(DataType):
    type_name = "high-water-mark"

    def __init__(self, initial: int = 0) -> None:
        self._initial = initial

    @property
    def initial(self) -> int:
        return self._initial

    def apply(self, state: int, operation: Any) -> Tuple[int, Any]:
        if isinstance(operation, Propose):
            return max(state, operation.value), "OK"
        if isinstance(operation, Peak):
            return state, state
        raise TypeError(operation)

    def is_read_only(self, operation: Any) -> bool:
        return isinstance(operation, Peak)

    def commutes_backward(self, op1, v1, op2, v2) -> bool:
        if isinstance(op1, Peak) and isinstance(op2, Peak):
            return True
        if isinstance(op1, Propose) and isinstance(op2, Propose):
            return True
        peak_value = v1 if isinstance(op1, Peak) else v2
        proposal = op1 if isinstance(op1, Propose) else op2
        return proposal.value < peak_value


class BrokenHighWaterMark(HighWaterMark):
    """Wrongly claims Peak always commutes with Propose."""

    def commutes_backward(self, op1, v1, op2, v2) -> bool:
        return True


OPERATIONS = [Propose(1), Propose(2), Peak()]


class TestCommutativityTable:
    def test_claimed_table_is_correct(self):
        hwm = HighWaterMark()
        prefixes = exhaustive_prefixes(hwm, OPERATIONS, 3)
        for prefix in prefixes:
            state = hwm.replay(prefix)
            for first_op in OPERATIONS:
                mid, v1 = hwm.apply(state, first_op)
                for second_op in OPERATIONS:
                    _, v2 = hwm.apply(mid, second_op)
                    problem = find_commutativity_counterexample(
                        hwm, (first_op, v1), (second_op, v2), prefixes
                    )
                    assert problem is None, str(problem)

    def test_overclaiming_table_is_caught(self):
        broken = BrokenHighWaterMark()
        prefixes = exhaustive_prefixes(broken, OPERATIONS, 3)
        # peak returning 0 then propose(2): swapping makes the peak illegal
        problem = find_commutativity_counterexample(
            broken, (Peak(), 0), (Propose(2), "OK"), prefixes
        )
        assert problem is not None
        assert problem.claimed_commutes

    def test_absorbed_proposal_commutes_with_peak(self):
        hwm = HighWaterMark(initial=5)
        assert hwm.commutes_backward(Peak(), 5, Propose(3), "OK")
        # the boundary case: equal value does NOT commute (strict bound)
        assert not hwm.commutes_backward(Peak(), 5, Propose(5), "OK")
        assert not hwm.commutes_backward(Peak(), 5, Propose(9), "OK")


class TestComposedSystem:
    def _build(self):
        hwm_obj, log_obj = ObjectName("hwm"), ObjectName("log")
        clients = tuple(
            sub(seq(op(hwm_obj, Propose(i + 1), "propose")), f"sensor{i}")
            for i in range(8)
        ) + (
            sub(seq(op(hwm_obj, Peak(), "peek"), read(log_obj, "r")),
                "monitor"),
        )
        programs = {ROOT: TransactionProgram(clients, sequential=False)}
        system_type = system_type_for(
            {hwm_obj: HighWaterMark(), log_obj: RWSpec(initial="boot")}, programs
        )
        system = make_generic_system(
            system_type,
            programs,
            {hwm_obj: UndoLoggingObject, log_obj: MossRWLockingObject},
        )
        return system, system_type

    def test_run_certifies(self):
        system, system_type = self._build()
        result = run_system(
            system,
            EagerInformPolicy(seed=1),
            system_type,
            max_steps=8000,
            resolve_deadlocks=True,
        )
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 9
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    def test_proposals_run_concurrently(self):
        # all proposals can be answered while none of their parents
        # committed — they commute
        from repro import Access, Create, RequestCommit, SystemType, TransactionName

        hwm_obj = ObjectName("hwm")
        system_type = SystemType({hwm_obj: HighWaterMark()})
        accesses = []
        for i in range(4):
            name = TransactionName((f"t{i}", "p"))
            system_type.register_access(name, Access(hwm_obj, Propose(i + 1)))
            accesses.append(name)
        undo = UndoLoggingObject(hwm_obj, system_type)
        state = undo.initial_state()
        for name in accesses:
            state = undo.effect(state, Create(name))
            response = RequestCommit(name, "OK")
            assert undo.enabled(state, response), name
            state = undo.effect(state, response)
