"""Tests for repro.distributed: placement, routing, simulation, merging."""

import random

import pytest

from repro.core.actions import Abort, Commit
from repro.core.names import ObjectName, TransactionName
from repro.core.online import OnlineCertifier
from repro.core.serialization_graph import SerializationGraph
from repro.distributed import (
    ClusterSchedule,
    DistributedConfig,
    DRead,
    DWrite,
    GlobalTransaction,
    PartitionWindow,
    Placement,
    build_dist_scenario,
    certify_distributed,
    certify_sites,
    dist_scenario_names,
    divergence_config,
    merge_site_graphs,
    replica_divergence,
    replica_name,
    replica_site,
    replica_variable,
    route_workload,
    run_distributed,
)
from repro.obs import FlightRecorder, MetricsRegistry, load_postmortems
from repro.sim.faults import SiteCrash, SiteRecovery


class TestPlacement:
    def test_even_variables_replicated_everywhere(self):
        placement = Placement.indexed(3, 6)
        assert placement.sites_for("x2") == (1, 2, 3)
        assert placement.sites_for("x4") == (1, 2, 3)
        assert placement.is_replicated("x6")

    def test_odd_variables_pinned_to_one_site(self):
        placement = Placement.indexed(3, 6)
        assert placement.sites_for("x1") == (1 + 1 % 3,)
        assert placement.sites_for("x3") == (1 + 3 % 3,)
        assert placement.sites_for("x5") == (1 + 5 % 3,)
        assert not placement.is_replicated("x1")

    def test_explicit_placement_overrides_indexed_rule(self):
        placement = Placement(3, ("x1", "balance"), explicit={"balance": (1, 3)})
        assert placement.sites_for("balance") == (1, 3)
        assert placement.sites_for("x1") == (2,)

    def test_unindexed_variable_without_explicit_placement_rejected(self):
        with pytest.raises(ValueError, match="trailing index"):
            Placement(2, ("balance",))

    def test_replica_name_round_trip(self):
        obj = replica_name("x12", 3)
        assert obj == ObjectName("x12@s3")
        assert replica_variable(obj) == "x12"
        assert replica_site(obj) == 3

    def test_variables_at_site(self):
        placement = Placement.indexed(2, 4)
        assert placement.variables_at(1) == ("x2", "x4")
        assert placement.variables_at(2) == ("x1", "x2", "x3", "x4")

    def test_replica_rejects_non_holding_site(self):
        placement = Placement.indexed(2, 2)
        with pytest.raises(ValueError, match="holds no copy"):
            placement.replica("x1", 1)


class TestRouting:
    def test_write_fans_out_to_all_sites(self):
        config = DistributedConfig(
            sites=3,
            transactions=(GlobalTransaction("t1", (DWrite("x2", 5),)),),
        )
        routing = route_workload(config)
        assert {site for plan in routing.plans.values() for site in
                {r.site for r in plan}} == {1, 2, 3}
        assert routing.routed_accesses() == 3

    def test_read_served_by_single_copy(self):
        config = DistributedConfig(
            sites=3,
            transactions=(GlobalTransaction("t1", (DRead("x2"),)),),
        )
        routing = route_workload(config)
        assert routing.routed_accesses() == 1

    def test_partition_blocks_write_fanout_and_flags_stale(self):
        window = PartitionWindow((frozenset({1}), frozenset({2})), 0, 10)
        config = DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DWrite("x2", 5),), home=1),),
            schedule=ClusterSchedule(partitions=(window,)),
        )
        routing = route_workload(config)
        assert [r.site for plan in routing.plans.values() for r in plan] == [1]
        assert routing.stale_risk == {"x2": {2}}

    def test_crash_dooms_in_flight_transaction(self):
        config = DistributedConfig(
            sites=2,
            transactions=(
                GlobalTransaction("t1", (DWrite("x2", 5), DRead("x2"))),
            ),
            schedule=ClusterSchedule(crashes=(SiteCrash(site=2, at_step=1),)),
        )
        routing = route_workload(config)
        assert "t1" in routing.doomed
        assert "crashed mid-transaction" in routing.doomed["t1"]

    def test_crash_after_commit_point_spares_transaction(self):
        config = DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DWrite("x2", 5),)),),
            schedule=ClusterSchedule(crashes=(SiteCrash(site=2, at_step=1),)),
        )
        routing = route_workload(config)
        assert routing.doomed == {}

    def test_no_available_copy_dooms(self):
        config = DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DRead("x1"),), home=1),),
            schedule=ClusterSchedule(crashes=(SiteCrash(site=2, at_step=0),)),
        )
        routing = route_workload(config)
        assert "no available copy" in routing.doomed["t1"]


class TestRecoveryBarrier:
    def _barrier_config(self, recovery_barrier):
        # s2 crashes and recovers before any op; the partition pins the
        # reader (home 2) to s2, so the read must hit the recovered copy
        window = PartitionWindow((frozenset({1}), frozenset({2})), 0, 10)
        return DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DRead("x2"),), home=2),),
            schedule=ClusterSchedule(
                crashes=(SiteCrash(site=2, at_step=0),),
                recoveries=(SiteRecovery(site=2, at_step=0),),
                partitions=(window,),
            ),
            recovery_barrier=recovery_barrier,
        )

    def test_replicated_copy_unreadable_until_fresh_write(self):
        routing = route_workload(self._barrier_config(True))
        assert "recovery barrier" in routing.doomed["t1"]
        assert routing.barrier_excluded_reads == 1

    def test_unguarded_recovery_serves_the_stale_copy(self):
        routing = route_workload(self._barrier_config(False))
        assert routing.doomed == {}
        (access,) = routing.plans[2]
        assert access.obj == ObjectName("x2@s2")

    def test_fresh_write_lifts_the_barrier(self):
        # a single write-then-read transaction is deterministic: the
        # write lands on the recovered copy and unlocks it for the read
        config = self._barrier_config(True)
        config.transactions = (
            GlobalTransaction("t1", (DWrite("x2", 9), DRead("x2")), home=2),
        )
        routing = route_workload(config)
        assert routing.doomed == {}
        reads = [r for plan in routing.plans.values() for r in plan
                 if r.transaction == "t1" and r.component.startswith("o1r")]
        assert reads and reads[0].site == 2

    def test_non_replicated_variable_readable_immediately(self):
        config = DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DRead("x1"),), home=2),),
            schedule=ClusterSchedule(
                crashes=(SiteCrash(site=2, at_step=0),),
                recoveries=(SiteRecovery(site=2, at_step=0),),
            ),
        )
        routing = route_workload(config)
        assert routing.doomed == {}


class TestSimulation:
    def test_commit_racing_site_crash_aborts_everywhere(self):
        # t1 writes the replicated x2 (both sites), then s2 crashes
        # before its second op: the abort must land at *every* site,
        # even at s1 where the local run could happily have committed
        config = DistributedConfig(
            sites=2,
            transactions=(
                GlobalTransaction("t1", (DWrite("x2", 5), DRead("x2"))),
            ),
            schedule=ClusterSchedule(crashes=(SiteCrash(site=2, at_step=1),)),
        )
        run = run_distributed(config)
        assert run.doomed.keys() == {"t1"}
        assert run.outcomes == {"t1": "aborted"}
        top = TransactionName(("t1",))
        for site_run in run.site_runs.values():
            commits = [a for a in site_run.behavior
                       if isinstance(a, Commit) and a.transaction == top]
            assert commits == [], f"t1 committed at s{site_run.site}"
        aborts_at_s1 = [a for a in run.site_runs[1].behavior
                        if isinstance(a, Abort) and a.transaction == top]
        assert aborts_at_s1, "the crash at s2 must abort t1 at s1 too"

    def test_survivors_commit_at_every_site(self):
        config = DistributedConfig(
            sites=2,
            transactions=(GlobalTransaction("t1", (DWrite("x2", 5),)),),
        )
        run = run_distributed(config)
        assert run.outcomes == {"t1": "committed"}
        for site_run in run.site_runs.values():
            assert any(isinstance(a, Commit)
                       and a.transaction == TransactionName(("t1",))
                       for a in site_run.behavior)

    def test_partition_healing_mid_subtree(self):
        # the first write lands only at s1; the partition heals before
        # the second write, which fans out and reconverges the replicas
        window = PartitionWindow((frozenset({1}), frozenset({2})), 0, 1)
        config = DistributedConfig(
            sites=2,
            transactions=(
                GlobalTransaction("t1", (DWrite("x2", 1), DWrite("x2", 2))),
            ),
            schedule=ClusterSchedule(partitions=(window,)),
        )
        run = run_distributed(config)
        assert run.outcomes == {"t1": "committed"}
        certificate = certify_distributed(run)
        assert certificate.globally_certified
        assert certificate.divergent_replicas == {}

    def test_stale_replica_read_after_partition(self):
        # t1's write misses the partitioned s2; t2, pinned there, reads
        # the stale copy — serializable, but the divergence report flags it
        window = PartitionWindow((frozenset({1}), frozenset({2})), 0, 10)
        config = DistributedConfig(
            sites=2,
            transactions=(
                GlobalTransaction("t1", (DWrite("x2", 7),), home=1),
                GlobalTransaction("t2", (DRead("x2"),), home=2),
            ),
            schedule=ClusterSchedule(partitions=(window,)),
        )
        run = run_distributed(config)
        assert run.outcomes == {"t1": "committed", "t2": "committed"}
        certificate = certify_distributed(run)
        assert certificate.globally_certified
        assert set(certificate.divergent_replicas) == {"x2"}
        assert certificate.divergent_replicas["x2"][1] == 7
        assert certificate.divergent_replicas["x2"][2] == 0

    def test_divergence_sweep_finds_local_global_disagreement(self):
        divergent = []
        for seed in range(30):
            run = run_distributed(divergence_config(seed))
            certificate = certify_distributed(run)
            if certificate.divergent:
                divergent.append(seed)
        assert divergent, "no seed in 0..29 produced a local/global divergence"

    def test_divergent_run_is_locally_clean_globally_cyclic(self):
        run = run_distributed(divergence_config(8))
        certificate = certify_distributed(run)
        assert certificate.divergent
        for cert in certificate.site_certificates.values():
            assert cert.certified
            assert cert.graph.find_cycle() is None
        assert certificate.global_cycle is not None
        sites_in_cycle = {site
                          for _, sites in certificate.cycle_edges()
                          for site in sites}
        assert len(sites_in_cycle) >= 2, "the cycle must span sites"

    def test_distributed_metrics_are_emitted(self):
        registry = MetricsRegistry()
        run = run_distributed(divergence_config(8), metrics=registry)
        certify_distributed(run, metrics=registry)
        snapshot = registry.snapshot()
        names = set(snapshot["counters"]) | set(snapshot["gauges"])
        for expected in (
            "distributed.sites",
            "distributed.routed.reads",
            "distributed.routed.writes",
            "distributed.routed.write_replicas",
            "distributed.reconcile_rounds",
            "distributed.certify.site_certified",
            "distributed.certify.global_rejected",
            "distributed.certify.divergence",
            "distributed.merge.groups",
            "distributed.merge.edges",
            "distributed.replica.divergent_vars",
        ):
            assert expected in names, expected


class TestSingleSiteEquivalence:
    """On one site, the global certifier is exactly the local one."""

    @staticmethod
    def _random_config(seed):
        rng = random.Random(seed)
        variables = ("x1", "x2", "x3", "x4")
        transactions = []
        for index in range(rng.randint(2, 4)):
            ops = []
            for _ in range(rng.randint(1, 3)):
                variable = rng.choice(variables)
                if rng.random() < 0.5:
                    ops.append(DRead(variable))
                else:
                    ops.append(DWrite(variable, rng.randint(1, 9)))
            transactions.append(
                GlobalTransaction(f"t{index + 1}", tuple(ops), home=1)
            )
        return DistributedConfig(
            sites=1,
            variables=variables,
            transactions=tuple(transactions),
            seed=seed,
        )

    def test_local_and_global_verdicts_agree_on_200_seeds(self):
        for seed in range(200):
            run = run_distributed(self._random_config(seed))
            certificate = certify_distributed(run)
            assert certificate.locally_certified == certificate.globally_certified
            assert not certificate.divergent
            (site_cert,) = certificate.site_certificates.values()
            assert (certificate.global_graph.edge_count()
                    == site_cert.graph.edge_count())
            assert (certificate.global_cycle is None) == (
                site_cert.graph.find_cycle() is None)


class TestMerge:
    def test_merge_of_single_graph_is_identity(self):
        histories, _, _ = build_dist_scenario("replicated-serial")
        certificate = certify_sites({1: histories[1]})
        site_graph = certificate.site_certificates[1].graph
        assert (sorted(map(str, certificate.global_graph.nodes()))
                == sorted(map(str, site_graph.nodes())))
        assert certificate.global_graph.edge_count() == site_graph.edge_count()

    def test_merge_records_edge_provenance(self):
        histories, _, _ = build_dist_scenario("partitioned-write-skew")
        certificate = certify_sites(histories)
        root_edges = {(str(e.source), str(e.target)): sites
                      for e, sites in certificate.edge_sites.items()
                      if len(e.source.path) == 1}
        assert root_edges[("T0/t1", "T0/t2")] == (1,)
        assert root_edges[("T0/t2", "T0/t1")] == (2,)

    def test_merge_empty_input(self):
        merged, provenance = merge_site_graphs({})
        assert isinstance(merged, SerializationGraph)
        assert merged.edge_count() == 0
        assert provenance == {}


class TestDistributedScenarios:
    @pytest.mark.parametrize("name", dist_scenario_names())
    def test_scenario_matches_expectation(self, name):
        histories, placement, expectation = build_dist_scenario(name)
        certificate = certify_sites(
            histories,
            divergent_replicas=replica_divergence(histories, placement),
        )
        assert certificate.locally_certified == expectation.locally_certified
        assert certificate.globally_certified == expectation.globally_certified
        assert certificate.divergent == expectation.divergent
        assert (tuple(sorted(certificate.divergent_replicas))
                == tuple(sorted(expectation.stale_variables)))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown distributed scenario"):
            build_dist_scenario("nope")

    def test_write_skew_summary_names_both_sites(self):
        histories, _, _ = build_dist_scenario("partitioned-write-skew")
        summary = certify_sites(histories).summary()
        assert "DIVERGENCE" in summary
        assert "(from s1)" in summary and "(from s2)" in summary


class TestFlightSiteId:
    def test_postmortem_records_originating_site(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        flight = FlightRecorder(str(path))
        histories, _, _ = build_dist_scenario("local-reject")
        behavior, system_type = histories[1]
        online = OnlineCertifier(
            system_type, flight=flight, session="test", site="s1"
        )
        online.feed_all(behavior)
        records = load_postmortems(str(path))
        assert records
        assert all(r["context"]["site"] == "s1" for r in records)

    def test_site_label_defaults_to_empty(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        flight = FlightRecorder(str(path))
        histories, _, _ = build_dist_scenario("local-reject")
        behavior, system_type = histories[1]
        OnlineCertifier(system_type, flight=flight).feed_all(behavior)
        records = load_postmortems(str(path))
        assert records and all(r["context"]["site"] == "" for r in records)


class TestDistsimCli:
    def test_scenario_divergence_exits_2(self, capsys):
        from repro.cli import main

        code = main(["distsim", "--scenario", "partitioned-write-skew"])
        out = capsys.readouterr().out
        assert code == 2
        assert "DIVERGENCE" in out

    def test_clean_scenario_exits_0(self, capsys):
        from repro.cli import main

        code = main(["distsim", "--scenario", "replicated-serial"])
        assert code == 0
        assert "global: certified" in capsys.readouterr().out

    def test_sweep_reports_divergent_seeds(self, capsys):
        from repro.cli import main

        code = main(["distsim", "--sweep", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "divergent" in out

    def test_seeded_run_writes_metrics_and_flight(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        flight = tmp_path / "flight.jsonl"
        code = main([
            "distsim", "--seed", "1",
            "--metrics-json", str(metrics),
            "--flight", str(flight),
        ])
        assert code in (0, 2)
        assert metrics.exists()
