"""The columnar engine: three-way lane equivalence and dense-state checks.

The dense-int struct-of-arrays engine (``certify(columnar=True)``) must
be observably identical to both the naive scans (``indexed=False``) and
the PR 3 history index (``indexed=True``): same verdicts, same ARV
diagnostics, same cycle witnesses, same graph edges, same serial
witnesses.  This suite sweeps 300 seeds across the existing generators,
plus directed cases for the spots where a bitset engine can silently go
wrong: word-size boundaries (>64 transactions), late-ABORT visibility
flips, and contended interleavings with cycle witnesses.
"""

import pytest

from repro.core import certify, certify_columnar
from repro.core.columnar import ColumnarHistory, build_columnar_graph
from repro.core.correctness import build_witness  # noqa: F401  (re-exported check)
from repro.core.events import serial_projection
from repro.core.history import ConflictCache, HistoryIndex
from repro.core.names import ROOT
from repro.core.oracle import oracle_serially_correct
from repro.core.serialization_graph import (
    build_serialization_graph,
    conflict_pairs,
    precedes_pairs,
)
from repro.core.view import serializability_theorem_applies
from repro.parallel import certify_corpus

from conftest import (
    BehaviorBuilder,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)
from test_core_properties import random_simple_behavior
from test_online import random_contended_behavior


def graph_edges(certificate):
    return sorted(
        (e.source, e.target, e.kind) for e in certificate.graph.edges()
    )


def assert_lanes_agree(behavior, system, seed=None):
    """All three lanes produce indistinguishable certificates."""
    naive = certify(behavior, system, indexed=False)
    fast = certify(behavior, system, indexed=True)
    dense = certify(behavior, system, columnar=True)
    assert naive.certified == fast.certified == dense.certified, seed
    assert naive.cycle == fast.cycle == dense.cycle, seed
    assert (
        [str(v) for v in naive.arv_violations]
        == [str(v) for v in fast.arv_violations]
        == [str(v) for v in dense.arv_violations]
    ), seed
    assert graph_edges(naive) == graph_edges(fast) == graph_edges(dense), seed
    assert naive.witness == fast.witness == dense.witness, seed
    return dense


class TestThreeWayEquivalence:
    """naive ≡ indexed ≡ columnar, 300 seeds across both generators."""

    def test_220_simple_seeds_agree(self):
        rejected_seen = 0
        for seed in range(220):
            behavior, system = random_simple_behavior(seed, steps=30)
            dense = assert_lanes_agree(behavior, system, seed)
            rejected_seen += not dense.certified
        # the sweep must exercise both verdicts, or it proves nothing
        assert 0 < rejected_seen < 220

    def test_80_contended_seeds_agree_on_cycle_witnesses(self):
        cyclic_seen = 0
        for seed in range(80):
            behavior, system = random_contended_behavior(seed)
            dense = assert_lanes_agree(behavior, system, seed)
            cyclic_seen += dense.cycle is not None
        assert cyclic_seen > 0

    @pytest.mark.parametrize(
        "scenario",
        [serial_two_txn_behavior, lost_update_behavior, dirty_read_behavior],
    )
    def test_canonical_scenarios_agree(self, scenario):
        behavior, system = scenario()
        assert_lanes_agree(behavior, system)

    def test_late_abort_flips_orphan_and_visibility_bitsets(self):
        """A parent ABORT arriving after its child's accesses must retire
        the whole subtree from the visible bitset and enter the orphan one."""
        system = rw_system("x")
        build = BehaviorBuilder(system)
        doomed = build.begin_top("doomed")
        build.write(doomed, "w", "x", 41)
        keeper = build.begin_top("keeper")
        build.write(keeper, "w", "x", 7)
        build.commit(keeper)
        # child committed, then the parent aborts late: reads of 41 must
        # not be required, and doomed's write must not reach conflict
        # enumeration in any lane
        build.abort(doomed)
        behavior, _ = build.build(), None
        assert_lanes_agree(behavior, system)
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        store.extend(behavior)
        doomed_id = store.txn_id_of(doomed)
        keeper_id = store.txn_id_of(keeper)
        assert store.orphan_flags()[doomed_id] == 1
        assert store.visible_flags()[doomed_id] == 0
        assert store.orphan_flags()[keeper_id] == 0
        assert store.visible_flags()[keeper_id] == 1
        # memoized HistoryIndex answers and bitset answers coincide
        index = HistoryIndex(behavior, system, columnar=True)
        slow = HistoryIndex(behavior, system)
        for name in store.txn_names:
            assert index.is_orphan(name) == slow.is_orphan(name), name
            assert index.is_visible(name, ROOT) == slow.is_visible(name, ROOT)

    def test_bitset_boundary_beyond_64_transactions(self):
        """>64 top-level transactions (and >64 events) force the visible
        and writer bitsets across machine-word boundaries; a word-size
        bug would drop edges or visibility for the high transactions."""
        system = rw_system("x")
        build = BehaviorBuilder(system)
        tops = []
        for i in range(70):
            top = build.begin_top(f"t{i:02d}")
            # each top reads then writes the one hot object: every
            # adjacent pair conflicts, across all word boundaries
            build.read(top, "r", "x", 0 if i == 0 else i)
            build.write(top, "w", "x", i + 1)
            build.commit(top)
            tops.append(top)
        behavior = build.build()
        dense = assert_lanes_agree(behavior, system)
        assert len(behavior) > 64 * 7  # comfortably past one word of events
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        store.extend(behavior)
        assert len(store.txn_names) > 64
        flags = store.visible_flags()
        for top in tops:
            assert flags[store.txn_id_of(top)] == 1, top
        # the serial chain must certify; all conflict edges found
        assert dense.certified
        assert store.visible_bits().bit_length() > 64

    def test_out_of_order_commits_above_64_transactions_cycle(self):
        """A contended workload stretched past the word boundary still
        yields identical cycle witnesses across lanes."""
        behavior, system = random_contended_behavior(11, transactions=25)
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        store.extend(behavior)
        assert len(store.txn_names) > 64  # 25 tops × (1 + 2 accesses) + root
        assert_lanes_agree(behavior, system)


class TestColumnarPlumbing:
    """The columnar lane is reachable from every certifier entry point."""

    def test_graph_builder_columnar_flag(self):
        behavior, system = random_simple_behavior(5, steps=30)
        serial = serial_projection(behavior)
        plain = build_serialization_graph(serial, system, columnar=False)
        dense = build_serialization_graph(serial, system, columnar=True)
        assert sorted(plain.nodes()) == sorted(dense.nodes())
        assert sorted(
            (e.source, e.target, e.kind) for e in plain.edges()
        ) == sorted((e.source, e.target, e.kind) for e in dense.edges())
        assert plain.find_cycle() == dense.find_cycle()

    def test_pair_enumerations_route_through_the_columnar_store(self):
        for seed in (3, 17, 42):
            behavior, system = random_simple_behavior(seed, steps=40)
            serial = serial_projection(behavior)
            plain = HistoryIndex(serial, system)
            dense = HistoryIndex(serial, system, columnar=True)
            assert dense.columnar is not None
            assert conflict_pairs(serial, system, dense) == conflict_pairs(
                serial, system, plain
            ), seed
            assert precedes_pairs(serial, dense) == precedes_pairs(
                serial, plain
            ), seed

    def test_oracle_and_view_accept_the_flag(self):
        behavior, system = serial_two_txn_behavior()
        assert oracle_serially_correct(behavior, system, columnar=True).correct
        assert oracle_serially_correct(behavior, system, columnar=False).correct
        certificate = certify(behavior, system, columnar=True)
        assert certificate.order is not None
        assert (
            serializability_theorem_applies(
                behavior, ROOT, certificate.order, system, columnar=True
            )
            == serializability_theorem_applies(
                behavior, ROOT, certificate.order, system, columnar=False
            )
            == []
        )

    def test_corpus_certification_matches_across_lanes(self):
        cases = []
        for seed in range(12):
            behavior, system = random_contended_behavior(seed)
            cases.append((f"case-{seed}", behavior, system))
        dense = certify_corpus(cases, jobs=1, columnar=True)
        plain = certify_corpus(cases, jobs=1, columnar=False)
        assert dense == plain

    def test_certify_columnar_streams_a_lazy_behavior(self):
        """No materialised list: a generator feeds the columns directly."""
        behavior, system = random_simple_behavior(9, steps=40)
        eager = certify(behavior, system, construct_witness=False)
        lazy = certify_columnar(
            (action for action in behavior),
            system,
            construct_witness=False,
        )
        assert eager.certified == lazy.certified
        assert eager.cycle == lazy.cycle

    def test_shared_cache_memoizes_generic_spec_verdicts(self):
        """Without the RW structural marker the engine falls back to the
        memoized pair scan; a shared cache answers the second run's
        verdicts entirely from the dense-id table."""
        from repro.core.names import ObjectName, SystemType
        from repro.core.rw_semantics import RWSpec

        class OpaqueRWSpec(RWSpec):
            # hide the structural marker: forces per-pair verdicts
            conflicts_iff_writer = False

        system = SystemType({ObjectName("x"): OpaqueRWSpec(initial=0)})
        build = BehaviorBuilder(system)
        for i in range(4):
            top = build.begin_top(f"t{i}")
            build.write(top, "w", "x", i)
            build.commit(top)
        behavior = build.build()
        cache = ConflictCache()
        first = certify_columnar(
            behavior, system, construct_witness=False, conflict_cache=cache
        )
        assert cache.misses > 0
        misses_after_first = cache.misses
        second = certify_columnar(
            behavior, system, construct_witness=False, conflict_cache=cache
        )
        assert first.certified == second.certified
        # every verdict the second run needed was already memoized
        assert cache.misses == misses_after_first
        assert cache.hits > 0

    def test_rw_bitset_sweep_never_consults_the_spec(self):
        """With the marker present, whole RW objects resolve by bitwise
        sweeps: the shared verdict table stays empty."""
        behavior, system = random_contended_behavior(3)
        cache = ConflictCache()
        certificate = certify_columnar(
            behavior, system, construct_witness=False, conflict_cache=cache
        )
        reference = certify(behavior, system, construct_witness=False)
        assert certificate.certified == reference.certified
        assert len(cache) == 0  # no per-pair verdicts were ever needed

    def test_graph_materializes_lazily_and_identically(self):
        behavior, system = random_contended_behavior(7)
        serial = serial_projection(behavior)
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        store.extend(serial)
        graph = build_columnar_graph(store)
        reference = build_serialization_graph(serial, system)
        # structural queries before materialisation
        assert graph.edge_count() == reference.edge_count()
        assert graph.find_cycle() == reference.find_cycle()
        # walking edges materialises the object digraphs
        assert sorted(
            (e.source, e.target, e.kind) for e in graph.edges()
        ) == sorted((e.source, e.target, e.kind) for e in reference.edges())
        assert graph.parents() == reference.parents()


class TestColumnarStore:
    """Dense-store internals: interning, bitsets, metrics."""

    def test_parent_ids_precede_child_ids(self):
        behavior, system = random_simple_behavior(21, steps=40)
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        store.extend(behavior)
        for dense in range(1, len(store.txn_names)):
            assert store.txn_parent[dense] < dense
        assert store.txn_names[0] is ROOT

    def test_non_serial_actions_are_dropped(self):
        from repro.core.actions import InformCommit

        system = rw_system("x")
        store = ColumnarHistory(system, conflict_cache=ConflictCache())
        build = BehaviorBuilder(system)
        top = build.begin_top("t")
        build.commit(top)
        count = store.extend(build.build())
        before = store.events
        assert not store.append(InformCommit(ROOT, top))
        assert store.events == before == count

    def test_build_metrics_are_emitted(self):
        from repro.obs.metrics import MetricsRegistry

        behavior, system = random_simple_behavior(2, steps=30)
        metrics = MetricsRegistry()
        certify(behavior, system, columnar=True, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["history.columnar.builds"] == 1
        assert snapshot["counters"]["history.columnar.events"] > 0
        assert snapshot["gauges"]["history.columnar.transactions"] > 1
        assert snapshot["counters"]["certify.runs"] == 1
