"""Direct tests of Propositions 7 and 18: conflict-preserving reorderings.

If ``perform(xi)`` is a behavior of ``S_X`` and ``eta`` reorders ``xi``
keeping every *conflicting* pair in its original order, then
``perform(eta)`` is a behavior of ``S_X`` too.  Proposition 7 is the
read/write case; Proposition 18 generalises via backward commutativity.
We test both by generating random legal operation sequences, sampling
random conflict-preserving permutations, and replaying.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RWSpec
from repro.core.rw_semantics import ReadOp, WriteOp
from repro.spec.builtin import (
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Withdraw,
)


def conflict_preserving_shuffle(spec, pairs, rng):
    """A random reordering keeping conflicting pairs in original order.

    Greedy topological sampling of the precedence DAG induced by the
    conflicting pairs.
    """
    n = len(pairs)
    preds = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if spec.conflicts(pairs[i][0], pairs[i][1], pairs[j][0], pairs[j][1]):
                preds[j].add(i)
    remaining = set(range(n))
    order = []
    while remaining:
        ready = [i for i in remaining if not (preds[i] & remaining)]
        pick = rng.choice(ready)
        order.append(pick)
        remaining.discard(pick)
    return [pairs[i] for i in order]


def spec_and_ops(which, rng):
    if which == 0:
        spec = RWSpec(initial=0)
        ops = [
            WriteOp(rng.randrange(3)) if rng.random() < 0.5 else ReadOp()
            for _ in range(8)
        ]
    elif which == 1:
        spec = CounterType()
        ops = [
            CounterRead() if rng.random() < 0.25 else CounterInc(rng.randrange(1, 4))
            for _ in range(8)
        ]
    elif which == 2:
        spec = SetType()
        ops = []
        for _ in range(8):
            element = rng.randrange(3)
            roll = rng.random()
            if roll < 0.4:
                ops.append(SetInsert(element))
            elif roll < 0.7:
                ops.append(SetRemove(element))
            else:
                ops.append(SetMember(element))
    else:
        spec = BankAccountType(initial=20)
        ops = []
        for _ in range(8):
            if rng.random() < 0.5:
                ops.append(Withdraw(rng.randrange(1, 12)))
            else:
                ops.append(Deposit(rng.randrange(1, 12)))
    if which == 0:
        # RWSpec lacks results_along; compute forced values by replay
        pairs = []
        state = spec.initial
        for op in ops:
            state, value = spec.apply(state, op)
            pairs.append((op, value))
        return spec, pairs
    return spec, spec.results_along(ops)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000), which=st.integers(0, 3))
def test_conflict_preserving_reorderings_stay_legal(seed, which):
    rng = random.Random(seed)
    spec, pairs = spec_and_ops(which, rng)
    assert spec.is_legal(pairs)
    for _ in range(3):
        reordered = conflict_preserving_shuffle(spec, pairs, rng)
        assert spec.is_legal(reordered), (pairs, reordered)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), which=st.integers(1, 3))
def test_reordering_is_equieffective(seed, which):
    # for deterministic, fully observable types, equieffectiveness is
    # state equality — the reordered sequence must reach an equivalent state
    rng = random.Random(seed)
    spec, pairs = spec_and_ops(which, rng)
    original_state = spec.replay(pairs)
    reordered = conflict_preserving_shuffle(spec, pairs, rng)
    assert spec.states_equivalent(spec.replay(reordered), original_state)


def test_violating_reordering_can_break_legality():
    # sanity: swapping a *conflicting* pair is not generally legal
    spec = CounterType()
    pairs = spec.results_along([CounterInc(1), CounterRead()])
    swapped = [pairs[1], pairs[0]]
    assert spec.is_legal(pairs)
    assert not spec.is_legal(swapped)
