"""Tests for transaction names, object names and system types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ROOT, Access, ObjectName, RWSpec, SystemType, TransactionName, lca
from repro.core.rw_semantics import ReadOp

from conftest import T


components = st.text(
    alphabet="abcdefgh", min_size=1, max_size=3
)
paths = st.lists(components, min_size=0, max_size=5).map(tuple)
names = paths.map(TransactionName)


class TestTransactionName:
    def test_root_properties(self):
        assert ROOT.is_root
        assert ROOT.depth == 0
        assert str(ROOT) == "T0"
        with pytest.raises(ValueError):
            ROOT.parent

    def test_parent_and_child(self):
        name = T("a", "b")
        assert name.parent == T("a")
        assert T("a").child("b") == name
        assert name.depth == 2

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            TransactionName(("",))
        with pytest.raises(TypeError):
            TransactionName(["a"])  # type: ignore[arg-type]

    def test_ancestors_include_self_and_root(self):
        ancestors = list(T("a", "b").ancestors())
        assert ancestors == [T("a", "b"), T("a"), ROOT]

    def test_proper_ancestors_exclude_self(self):
        assert list(T("a", "b").proper_ancestors()) == [T("a"), ROOT]
        assert list(ROOT.proper_ancestors()) == []

    def test_ancestor_descendant(self):
        assert T("a").is_ancestor_of(T("a", "b", "c"))
        assert T("a", "b").is_descendant_of(T("a"))
        assert not T("a", "b").is_ancestor_of(T("a", "c"))
        # reflexive per the paper
        assert T("a").is_ancestor_of(T("a"))
        assert T("a").is_descendant_of(T("a"))

    def test_siblings(self):
        assert T("a", "x").is_sibling_of(T("a", "y"))
        assert not T("a", "x").is_sibling_of(T("a", "x"))
        assert not T("a", "x").is_sibling_of(T("b", "y"))
        assert not T("a").is_sibling_of(ROOT)

    def test_related(self):
        assert T("a").is_related_to(T("a", "b"))
        assert not T("a", "x").is_related_to(T("a", "y"))

    def test_ordering_is_total(self):
        ordered = sorted([T("b"), T("a", "z"), T("a"), ROOT])
        assert ordered == [ROOT, T("a"), T("a", "z"), T("b")]

    @given(names, names)
    def test_lca_is_common_ancestor(self, a, b):
        ancestor = lca(a, b)
        assert ancestor.is_ancestor_of(a)
        assert ancestor.is_ancestor_of(b)

    @given(names, names)
    def test_lca_is_least(self, a, b):
        ancestor = lca(a, b)
        # any deeper common prefix would differ
        if ancestor != a and ancestor != b:
            deeper_a = a.path[: ancestor.depth + 1]
            deeper_b = b.path[: ancestor.depth + 1]
            assert deeper_a != deeper_b

    @given(names)
    def test_ancestor_chain_length(self, name):
        assert len(list(name.ancestors())) == name.depth + 1

    @given(names, names)
    def test_sibling_symmetry(self, a, b):
        assert a.is_sibling_of(b) == b.is_sibling_of(a)


class TestObjectName:
    def test_valid(self):
        assert str(ObjectName("x")) == "x"

    def test_invalid(self):
        with pytest.raises(ValueError):
            ObjectName("")

    def test_ordering(self):
        assert sorted([ObjectName("b"), ObjectName("a")]) == [
            ObjectName("a"),
            ObjectName("b"),
        ]


class TestSystemType:
    def _system(self) -> SystemType:
        return SystemType({ObjectName("x"): RWSpec(initial=0)})

    def test_register_and_query(self):
        system = self._system()
        access = T("t", "a")
        system.register_access(access, Access(ObjectName("x"), ReadOp()))
        assert system.is_access(access)
        assert system.object_of(access) == ObjectName("x")
        assert not system.is_access(T("t"))
        assert system.accesses_to(ObjectName("x")) == (access,)

    def test_unknown_object_rejected(self):
        system = self._system()
        with pytest.raises(KeyError):
            system.register_access(T("t", "a"), Access(ObjectName("nope"), ReadOp()))

    def test_root_cannot_be_access(self):
        system = self._system()
        with pytest.raises(ValueError):
            system.register_access(ROOT, Access(ObjectName("x"), ReadOp()))

    def test_access_below_access_rejected(self):
        system = self._system()
        system.register_access(T("t", "a"), Access(ObjectName("x"), ReadOp()))
        with pytest.raises(ValueError):
            system.register_access(
                T("t", "a", "b"), Access(ObjectName("x"), ReadOp())
            )

    def test_conflicting_reregistration_rejected(self):
        system = self._system()
        system.register_access(T("t", "a"), Access(ObjectName("x"), ReadOp()))
        with pytest.raises(ValueError):
            from repro.core.rw_semantics import WriteOp

            system.register_access(T("t", "a"), Access(ObjectName("x"), WriteOp(1)))

    def test_idempotent_reregistration_allowed(self):
        system = self._system()
        system.register_access(T("t", "a"), Access(ObjectName("x"), ReadOp()))
        system.register_access(T("t", "a"), Access(ObjectName("x"), ReadOp()))

    def test_spec_lookup(self):
        system = self._system()
        assert system.spec(ObjectName("x")).initial == 0
        with pytest.raises(KeyError):
            system.spec(ObjectName("zzz"))

    def test_merged_with(self):
        left = self._system()
        right = SystemType({ObjectName("y"): RWSpec(initial=1)})
        right.register_access(T("u", "a"), Access(ObjectName("y"), ReadOp()))
        merged = left.merged_with(right)
        assert set(merged.object_names()) == {ObjectName("x"), ObjectName("y")}
        assert merged.is_access(T("u", "a"))
