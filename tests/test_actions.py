"""Tests for the action vocabulary and the transaction/high/low operators."""

import pytest

from repro import (
    ROOT,
    Abort,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.actions import (
    format_behavior,
    hightransaction,
    is_completion,
    is_report,
    is_serial_action,
    lowtransaction,
    object_of,
    transaction_of,
)
from repro.core.rw_semantics import ReadOp

from conftest import T, rw_system


class TestConstruction:
    def test_root_restrictions(self):
        for cls in (RequestCreate, Commit, Abort, ReportAbort):
            with pytest.raises(ValueError):
                cls(ROOT)
        with pytest.raises(ValueError):
            ReportCommit(ROOT, 1)
        with pytest.raises(ValueError):
            InformCommit(ObjectName("x"), ROOT)
        with pytest.raises(ValueError):
            InformAbort(ObjectName("x"), ROOT)

    def test_create_of_root_allowed_syntactically(self):
        # CREATE(T0) is never emitted by our schedulers but the action
        # constructor itself does not forbid the root name.
        Create(ROOT)

    def test_values_must_be_hashable(self):
        with pytest.raises(TypeError):
            RequestCommit(T("t"), [1, 2])
        with pytest.raises(TypeError):
            ReportCommit(T("t"), ["unhashable"])

    def test_equality_and_hash(self):
        assert RequestCommit(T("t"), 1) == RequestCommit(T("t"), 1)
        assert hash(Commit(T("t"))) == hash(Commit(T("t")))
        assert Commit(T("t")) != Abort(T("t"))


class TestClassification:
    def test_serial_actions(self):
        serial = [
            Create(T("t")),
            RequestCreate(T("t")),
            RequestCommit(T("t"), 1),
            Commit(T("t")),
            Abort(T("t")),
            ReportCommit(T("t"), 1),
            ReportAbort(T("t")),
        ]
        for action in serial:
            assert is_serial_action(action)
        assert not is_serial_action(InformCommit(ObjectName("x"), T("t")))
        assert not is_serial_action(InformAbort(ObjectName("x"), T("t")))

    def test_completions_and_reports(self):
        assert is_completion(Commit(T("t")))
        assert is_completion(Abort(T("t")))
        assert not is_completion(ReportCommit(T("t"), 1))
        assert is_report(ReportCommit(T("t"), 1))
        assert is_report(ReportAbort(T("t")))
        assert not is_report(Commit(T("t")))


class TestOperators:
    def test_transaction_of(self):
        assert transaction_of(Create(T("t", "u"))) == T("t", "u")
        assert transaction_of(RequestCommit(T("t", "u"), 1)) == T("t", "u")
        # requests/reports about a child belong to the parent
        assert transaction_of(RequestCreate(T("t", "u"))) == T("t")
        assert transaction_of(ReportCommit(T("t", "u"), 1)) == T("t")
        assert transaction_of(ReportAbort(T("t", "u"))) == T("t")
        assert transaction_of(Commit(T("t"))) is None
        assert transaction_of(InformCommit(ObjectName("x"), T("t"))) is None

    def test_high_low_for_completions(self):
        commit = Commit(T("t", "u"))
        assert hightransaction(commit) == T("t")
        assert lowtransaction(commit) == T("t", "u")
        abort = Abort(T("t"))
        assert hightransaction(abort) == ROOT
        assert lowtransaction(abort) == T("t")

    def test_high_low_for_non_completions(self):
        action = RequestCreate(T("t", "u"))
        assert hightransaction(action) == T("t")
        assert lowtransaction(action) == T("t")

    def test_high_low_undefined_for_informs(self):
        with pytest.raises(ValueError):
            hightransaction(InformCommit(ObjectName("x"), T("t")))
        with pytest.raises(ValueError):
            lowtransaction(InformAbort(ObjectName("x"), T("t")))

    def test_object_of(self):
        system = rw_system("x")
        access = T("t", "a")
        from repro import Access

        system.register_access(access, Access(ObjectName("x"), ReadOp()))
        assert object_of(Create(access), system) == ObjectName("x")
        assert object_of(RequestCommit(access, 0), system) == ObjectName("x")
        assert object_of(Create(T("t")), system) is None
        assert object_of(Commit(access), system) is None
        assert object_of(InformCommit(ObjectName("x"), T("t")), system) == ObjectName(
            "x"
        )


def test_format_behavior_lines():
    text = format_behavior([Create(T("t")), Commit(T("t"))])
    lines = text.splitlines()
    assert len(lines) == 2
    assert "CREATE(T0/t)" in lines[0]
    assert "COMMIT(T0/t)" in lines[1]
