"""Tier-1 guard: the fenced ``python`` blocks in the user-facing docs run.

Mirrors the CI "docs" job (`tools/run_doc_examples.py`): each file's
blocks are concatenated in order and executed in a fresh interpreter,
so documentation drift — an example importing something renamed, or
asserting something no longer true — fails the test suite, not just a
reader.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RUNNER = REPO_ROOT / "tools" / "run_doc_examples.py"

DOC_FILES = [
    "README.md",
    "docs/TUTORIAL.md",
    "docs/ARCHITECTURE.md",
    "docs/PERFORMANCE.md",
    "docs/DISTRIBUTED.md",
]


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_examples_run(doc):
    proc = subprocess.run(
        [sys.executable, str(RUNNER), doc],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.startswith("OK")


def test_runner_extracts_only_python_fences(tmp_path):
    from importlib import util

    spec = util.spec_from_file_location("run_doc_examples", RUNNER)
    module = util.module_from_spec(spec)
    spec.loader.exec_module(module)
    text = (
        "prose\n```bash\nexit 1\n```\n"
        "```python\nx = 1\n```\nmore\n```\nnot code\n```\n"
        "```python\nassert x == 1\n```\n"
    )
    assert module.extract_python_blocks(text) == ["x = 1", "assert x == 1"]
    with pytest.raises(ValueError):
        module.extract_python_blocks("```python\nunclosed\n")


def test_runner_fails_on_docs_without_examples(tmp_path):
    empty = tmp_path / "empty.md"
    empty.write_text("no code here\n")
    proc = subprocess.run(
        [sys.executable, str(RUNNER), str(empty)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "no ```python blocks" in proc.stdout
