"""Tests for projections, status index, visibility, clean, affects."""

from repro import (
    OK,
    Abort,
    Commit,
    Create,
    InformCommit,
    ObjectName,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    ROOT,
    StatusIndex,
    clean_projection,
    project_object,
    project_transaction,
    serial_projection,
    visible_projection,
)
from repro.core.events import AffectsRelation, directly_affects_pairs

from conftest import BehaviorBuilder, T, rw_system


class TestProjections:
    def test_serial_projection_drops_informs(self):
        behavior = (
            Create(T("t")),
            InformCommit(ObjectName("x"), T("t")),
            Commit(T("t")),
        )
        assert serial_projection(behavior) == (Create(T("t")), Commit(T("t")))

    def test_project_transaction(self):
        behavior = (
            RequestCreate(T("t")),          # transaction = T0
            Create(T("t")),                 # transaction = t
            RequestCreate(T("t", "u")),     # transaction = t
            RequestCommit(T("t"), 1),       # transaction = t
            Commit(T("t")),                 # completion: no transaction
            ReportCommit(T("t"), 1),        # transaction = T0
        )
        assert project_transaction(behavior, T("t")) == (
            Create(T("t")),
            RequestCreate(T("t", "u")),
            RequestCommit(T("t"), 1),
        )
        assert project_transaction(behavior, ROOT) == (
            RequestCreate(T("t")),
            ReportCommit(T("t"), 1),
        )

    def test_project_object(self):
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.read(t, "rx", "x", 0)
        b.write(t, "wy", "y", 3)
        behavior = b.build()
        x_events = project_object(behavior, ObjectName("x"), system)
        assert [type(a).__name__ for a in x_events] == ["Create", "RequestCommit"]
        assert all(a.transaction == t.child("rx") for a in x_events)


class TestStatusIndex:
    def test_basic_sets(self):
        behavior = (
            RequestCreate(T("a")),
            Create(T("a")),
            RequestCommit(T("a"), 5),
            Commit(T("a")),
            RequestCreate(T("b")),
            Abort(T("b")),
            ReportAbort(T("b")),
        )
        index = StatusIndex(behavior)
        assert T("a") in index.committed
        assert T("b") in index.aborted
        assert index.commit_requested[T("a")] == 5
        assert T("b") in index.reported
        assert index.completed(T("a")) and index.completed(T("b"))

    def test_orphan(self):
        index = StatusIndex((Abort(T("a")),))
        assert index.is_orphan(T("a"))
        assert index.is_orphan(T("a", "deep", "child"))
        assert not index.is_orphan(T("b"))
        assert not index.is_orphan(ROOT)

    def test_live(self):
        behavior = (RequestCreate(T("a")), Create(T("a")))
        index = StatusIndex(behavior)
        assert index.is_live(T("a"))
        index2 = StatusIndex(behavior + (Commit(T("a")),))
        assert not index2.is_live(T("a"))
        assert not StatusIndex(()).is_live(T("a"))

    def test_visibility_requires_chain_commits(self):
        # T0/a/b visible to T0 iff both a/b and a committed.
        behavior = (Commit(T("a", "b")),)
        index = StatusIndex(behavior)
        assert not index.is_visible(T("a", "b"), ROOT)
        index = StatusIndex(behavior + (Commit(T("a")),))
        assert index.is_visible(T("a", "b"), ROOT)

    def test_visibility_to_relative(self):
        # a/b visible to a/c needs only COMMIT(a/b); the shared ancestor a
        # need not have committed.
        index = StatusIndex((Commit(T("a", "b")),))
        assert index.is_visible(T("a", "b"), T("a", "c"))
        assert index.is_visible(T("a", "b"), T("a"))

    def test_ancestor_always_visible(self):
        index = StatusIndex(())
        assert index.is_visible(T("a"), T("a", "b"))
        assert index.is_visible(ROOT, T("a"))
        assert index.is_visible(T("a"), T("a"))

    def test_descendant_not_visible_without_commit(self):
        index = StatusIndex(())
        assert not index.is_visible(T("a", "b"), T("a"))


class TestVisibleAndClean:
    def test_visible_projection_filters_uncommitted(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.write(t2, "w", "x", 2)
        b.commit(t1)  # t2 never commits
        behavior = b.build()
        visible = visible_projection(behavior, ROOT)
        touched = {getattr(a, "transaction", None) for a in visible}
        assert t1.child("w") in touched
        assert t2.child("w") not in touched
        # t2's own creation is visible (hightransaction T0), its access is not
        assert RequestCreate(t2) in visible

    def test_clean_projection_drops_orphans(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        access = b.write(t1, "w", "x", 1)
        b.abort(t1)
        behavior = b.build()
        clean = clean_projection(behavior)
        touched = {getattr(a, "transaction", None) for a in clean}
        assert access not in touched
        # T0-level actions survive
        assert RequestCreate(t1) in clean

    def test_clean_keeps_unaborted(self):
        behavior = (RequestCreate(T("a")), Create(T("a")))
        assert clean_projection(behavior) == behavior


class TestAffects:
    def test_directly_affects_same_transaction(self):
        behavior = (
            Create(T("t")),
            RequestCreate(T("t", "u")),
            RequestCommit(T("t"), 1),
        )
        pairs = directly_affects_pairs(behavior)
        assert (0, 1) in pairs and (0, 2) in pairs and (1, 2) in pairs

    def test_directly_affects_protocol_pairs(self):
        behavior = (
            RequestCreate(T("t")),
            Create(T("t")),
            RequestCommit(T("t"), 1),
            Commit(T("t")),
            ReportCommit(T("t"), 1),
        )
        pairs = set(directly_affects_pairs(behavior))
        assert (0, 1) in pairs  # REQUEST_CREATE -> CREATE
        assert (2, 3) in pairs  # REQUEST_COMMIT -> COMMIT
        assert (3, 4) in pairs  # COMMIT -> REPORT_COMMIT

    def test_abort_pairs(self):
        behavior = (
            RequestCreate(T("t")),
            Abort(T("t")),
            ReportAbort(T("t")),
        )
        pairs = set(directly_affects_pairs(behavior))
        assert (0, 1) in pairs  # REQUEST_CREATE -> ABORT
        assert (1, 2) in pairs  # ABORT -> REPORT_ABORT

    def test_affects_transitive(self):
        behavior = (
            RequestCreate(T("t")),   # by T0
            Create(T("t")),
            RequestCommit(T("t"), 1),
            Commit(T("t")),
            ReportCommit(T("t"), 1),
        )
        affects = AffectsRelation(behavior)
        assert affects.affects(0, 4)  # request-create transitively affects report
        assert not affects.affects(4, 0)
        assert not affects.affects(3, 3)

    def test_unrelated_events_do_not_affect(self):
        behavior = (
            RequestCreate(T("a")),
            RequestCreate(T("b")),
        )
        affects = AffectsRelation(behavior)
        # both have transaction T0, so earlier affects later
        assert affects.affects(0, 1)
        behavior = (Create(T("a")), Create(T("b")))
        affects = AffectsRelation(behavior)
        assert not affects.affects(0, 1)
