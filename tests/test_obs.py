"""Tests for the observability layer: metrics, tracer, sinks, hooks."""

import json
import logging

import pytest

from repro import (
    EagerInformPolicy,
    MetricsHooks,
    MossRWLockingObject,
    OnlineCertifier,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)
from repro.obs import (
    NULL_TRACER,
    JSONLFileSink,
    LoggingSink,
    MetricsRegistry,
    NullTracer,
    RingBufferSink,
    Tracer,
    load_jsonl_trace,
    span_coverage,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.tracer import _NULL_SPAN


def run_workload(seed=7, top_level=4, hooks=None):
    system_type, programs = generate_workload(
        WorkloadConfig(seed=seed, top_level=top_level, objects=3, max_depth=2)
    )
    system = make_generic_system(
        system_type, programs, MossRWLockingObject, hooks=hooks
    )
    result = run_system(
        system,
        EagerInformPolicy(seed=seed),
        system_type,
        resolve_deadlocks=True,
        hooks=hooks,
    )
    return result, system_type


class TestMetrics:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.snapshot() == 1.5

    def test_histogram_buckets(self):
        histogram = Histogram(buckets=(1, 10, 100))
        for value in (0.5, 5, 5, 50, 500):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"1": 1, "10": 2, "100": 1, "+inf": 1}
        assert snapshot["count"] == 5
        assert snapshot["min"] == 0.5 and snapshot["max"] == 500
        assert snapshot["mean"] == pytest.approx(560.5 / 5)

    def test_registry_get_or_create_and_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("a.count")
        registry.inc("a.count", 2)
        registry.set_gauge("b.size", 42)
        registry.observe("c.latency", 0.005)
        assert registry.counter("a.count") is registry.counter("a.count")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a.count"] == 3
        assert snapshot["gauges"]["b.size"] == 42
        assert snapshot["histograms"]["c.latency"]["count"] == 1
        # JSON round-trips
        assert json.loads(registry.to_json()) == snapshot

    def test_registry_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("x")
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text())["counters"]["x"] == 1

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestTracer:
    def test_nesting_depth_and_parent(self):
        ring = RingBufferSink()
        tracer = Tracer(ring)
        with tracer.span("outer") as outer:
            with tracer.span("inner", obj="x"):
                pass
        spans = {span.name: span for span in ring.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].depth == 1
        assert spans["outer"].depth == 0
        assert spans["inner"].tags == {"obj": "x"}
        assert spans["outer"].duration >= spans["inner"].duration >= 0
        # children emitted before parents (completion order)
        assert [span.name for span in ring.spans()] == ["inner", "outer"]
        assert outer.span.end is not None

    def test_error_tagging(self):
        ring = RingBufferSink()
        tracer = Tracer(ring)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = ring.spans()
        assert span.tags.get("error") is True
        assert tracer.current_span is None

    def test_metrics_integration(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("phase"):
            pass
        assert registry.snapshot()["histograms"]["span.phase"]["count"] == 1

    def test_ring_buffer_capacity(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(ring)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in ring.spans()] == ["s3", "s4"]

    def test_jsonl_sink_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JSONLFileSink(path))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.close()
        spans = load_jsonl_trace(path)
        assert [span["name"] for span in spans] == ["b", "a"]
        assert all(span["dur"] >= 0 for span in spans)

    def test_spans_carry_epoch_wall_start(self, tmp_path):
        """``wall_start`` is epoch time, so traces from different
        processes (whose perf_counter origins differ) can be aligned."""
        import time

        ring = RingBufferSink()
        before = time.time()
        with Tracer(ring).span("aligned"):
            pass
        after = time.time()
        (span,) = ring.spans()
        assert before <= span.wall_start <= after
        assert span.to_dict()["wall_start"] == span.wall_start
        # the monotonic start/end stamps are a different clock domain
        assert span.start != span.wall_start

    def test_logging_sink(self, caplog):
        tracer = Tracer(LoggingSink("repro.obs.test", level=logging.INFO))
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            with tracer.span("logged"):
                pass
        assert any("logged" in record.message for record in caplog.records)

    def test_null_tracer_is_falsy_shared_noop(self):
        assert not NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.span("anything", k=1) is _NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.set_tag("k", "v")  # no-op, no error
        assert Tracer()  # a real tracer is truthy

    def test_span_coverage(self):
        ring = RingBufferSink()
        tracer = Tracer(ring)
        with tracer.span("root"):
            with tracer.span("child1"):
                pass
            with tracer.span("child2"):
                pass
        coverage = span_coverage(ring.spans(), "root")
        assert coverage is not None and 0.0 <= coverage <= 1.0
        assert span_coverage(ring.spans(), "absent") is None


class TestHooksIntegration:
    def test_driver_and_controller_hooks_match_stats(self):
        registry = MetricsRegistry()
        hooks = MetricsHooks(registry)
        result, _ = run_workload(hooks=hooks)
        counters = registry.snapshot()["counters"]
        assert counters["driver.steps"] == result.stats.steps
        assert counters["controller.commits"] == result.stats.committed
        assert counters.get("controller.aborts", 0) == result.stats.aborted
        assert (
            counters.get("controller.top_level_commits", 0)
            == result.stats.top_level_committed
        )
        assert counters.get("driver.deadlock_aborts", 0) == (
            result.stats.deadlock_aborts
        )
        gauges = registry.snapshot()["gauges"]
        assert bool(gauges.get("driver.quiescent", 0)) == result.stats.quiescent
        # per-action counters sum to the step count
        action_total = sum(
            count
            for name, count in counters.items()
            if name.startswith("driver.action.")
        )
        assert action_total == result.stats.steps

    def test_certify_spans_cover_phases(self):
        result, system_type = run_workload(top_level=6)
        ring = RingBufferSink()
        registry = MetricsRegistry()
        tracer = Tracer(ring, metrics=registry)
        certificate = certify(
            result.behavior, system_type, tracer=tracer, metrics=registry
        )
        assert certificate.certified
        names = {span.name for span in ring.spans()}
        assert {
            "certify",
            "certify.project",
            "certify.arv",
            "certify.build_graph",
            "certify.find_cycle",
            "certify.witness",
            "sg.conflict_pairs",
            "sg.precedes_pairs",
        } <= names
        coverage = span_coverage(ring.spans(), "certify")
        assert coverage is not None and coverage >= 0.75
        gauges = registry.snapshot()["gauges"]
        assert gauges["sg.nodes"] == len(certificate.graph.nodes())
        assert gauges["sg.edges"] == certificate.graph.edge_count()

    def test_certify_unchanged_without_instrumentation(self):
        result, system_type = run_workload()
        plain = certify(result.behavior, system_type)
        traced = certify(
            result.behavior,
            system_type,
            tracer=Tracer(RingBufferSink()),
            metrics=MetricsRegistry(),
        )
        assert plain.certified == traced.certified
        assert plain.witness == traced.witness

    def test_online_certifier_metrics(self):
        result, system_type = run_workload()
        registry = MetricsRegistry()
        ring = RingBufferSink()
        certifier = OnlineCertifier(
            system_type, tracer=Tracer(ring), metrics=registry
        )
        verdict = certifier.feed_all(result.behavior)
        counters = registry.snapshot()["counters"]
        assert counters["online.actions"] > 0
        assert counters["online.visible_insertions"] > 0
        edge_total = counters.get("online.edges.conflict", 0) + counters.get(
            "online.edges.precedes", 0
        )
        assert edge_total == certifier.graph.edge_count()
        assert verdict.certified == certify(
            result.behavior, system_type, construct_witness=False
        ).certified
        feed_spans = [s for s in ring.spans() if s.name == "online.feed"]
        assert len(feed_spans) == counters["online.actions"]

    def test_online_certifier_verdict_unchanged_by_instrumentation(self):
        result, system_type = run_workload(seed=11)
        plain = OnlineCertifier(system_type).feed_all(result.behavior)
        instrumented = OnlineCertifier(
            system_type, metrics=MetricsRegistry()
        ).feed_all(result.behavior)
        assert plain == instrumented
