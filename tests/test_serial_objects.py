"""Tests for the serial object automata S_X (read/write and typed)."""

import pytest

from repro import (
    OK,
    Access,
    Create,
    ObjectName,
    ReadOp,
    RequestCommit,
    RWSpec,
    SerialRWObject,
    SerialTypedObject,
    SystemType,
    WriteOp,
)
from repro.automata.base import replay_schedule
from repro.spec.builtin import CounterInc, CounterRead, CounterType

from conftest import T


def rw_setup():
    system = SystemType({ObjectName("x"): RWSpec(initial=0)})
    reader = T("t", "r")
    writer = T("t", "w")
    system.register_access(reader, Access(ObjectName("x"), ReadOp()))
    system.register_access(writer, Access(ObjectName("x"), WriteOp(5)))
    return system, SerialRWObject(ObjectName("x"), system), reader, writer


class TestSerialRWObject:
    def test_initial_state(self):
        _, obj, *_ = rw_setup()
        state = obj.initial_state()
        assert state.active is None
        assert state.data == 0

    def test_read_returns_data(self):
        _, obj, reader, _ = rw_setup()
        state = obj.effect(obj.initial_state(), Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 0))
        assert not obj.enabled(state, RequestCommit(reader, 1))
        assert list(obj.enabled_outputs(state)) == [RequestCommit(reader, 0)]

    def test_write_stores_and_returns_ok(self):
        _, obj, reader, writer = rw_setup()
        state = obj.effect(obj.initial_state(), Create(writer))
        assert obj.enabled(state, RequestCommit(writer, OK))
        assert not obj.enabled(state, RequestCommit(writer, 5))
        state = obj.effect(state, RequestCommit(writer, OK))
        assert state.data == 5
        assert state.active is None

    def test_request_commit_requires_active(self):
        _, obj, reader, _ = rw_setup()
        state = obj.initial_state()
        assert not obj.enabled(state, RequestCommit(reader, 0))

    def test_signature(self):
        system, obj, reader, _ = rw_setup()
        assert obj.is_input(Create(reader))
        assert obj.is_output(RequestCommit(reader, 0))
        assert not obj.is_input(Create(T("t")))  # non-access
        # an access to another object is not in the signature
        other = T("t", "other")
        system2 = SystemType({ObjectName("y"): RWSpec()})

    def test_replay_full_behavior(self):
        _, obj, reader, writer = rw_setup()
        execution = replay_schedule(
            obj,
            [
                Create(writer),
                RequestCommit(writer, OK),
                Create(reader),
                RequestCommit(reader, 5),
            ],
        )
        assert execution.final_state.data == 5

    def test_lemma3_state_is_final_value(self):
        # the state's data component always equals final-value of the
        # behavior so far (Lemma 3)
        system = SystemType({ObjectName("x"): RWSpec(initial=0)})
        names = []
        for i in range(4):
            name = T("t", f"w{i}")
            system.register_access(name, Access(ObjectName("x"), WriteOp(i * 10)))
            names.append(name)
        obj = SerialRWObject(ObjectName("x"), system)
        state = obj.initial_state()
        for name in names:
            state = obj.effect(state, Create(name))
            state = obj.effect(state, RequestCommit(name, OK))
        assert state.data == 30


class TestSerialTypedObject:
    def _setup(self):
        system = SystemType({ObjectName("c"): CounterType(initial=10)})
        inc = T("t", "inc")
        read = T("t", "read")
        system.register_access(inc, Access(ObjectName("c"), CounterInc(5)))
        system.register_access(read, Access(ObjectName("c"), CounterRead()))
        return system, SerialTypedObject(ObjectName("c"), system), inc, read

    def test_initial_state(self):
        _, obj, *_ = self._setup()
        assert obj.initial_state().data == 10

    def test_update_then_read(self):
        _, obj, inc, read = self._setup()
        state = obj.effect(obj.initial_state(), Create(inc))
        assert list(obj.enabled_outputs(state)) == [RequestCommit(inc, "OK")]
        state = obj.effect(state, RequestCommit(inc, "OK"))
        assert state.data == 15
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 15))
        assert not obj.enabled(state, RequestCommit(read, 10))

    def test_rejects_non_datatype_spec(self):
        system = SystemType({ObjectName("x"): RWSpec()})
        with pytest.raises(TypeError):
            SerialTypedObject(ObjectName("x"), system)

    def test_no_output_when_idle(self):
        _, obj, *_ = self._setup()
        assert list(obj.enabled_outputs(obj.initial_state())) == []
