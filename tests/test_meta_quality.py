"""Meta quality gates: docstrings everywhere public, determinism everywhere.

These tests police the engineering claims the README makes — every
public item is documented, and every simulation is reproducible from
its seed.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        name = info.name
        if any(part.startswith("_") for part in name.split(".")):
            continue
        yield importlib.import_module(name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in _public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _public_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name, None)
                if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export; documented at its home
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == [], missing

    def test_public_methods_documented(self):
        """Spot-check the flagship classes' public methods."""
        from repro import OnlineCertifier, SerializationGraph, SiblingOrder
        from repro.core.correctness import Certificate

        missing = []
        for cls in (OnlineCertifier, SerializationGraph, SiblingOrder, Certificate):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not (inspect.getdoc(member) or "").strip():
                    missing.append(f"{cls.__name__}.{name}")
        assert missing == [], missing


class TestDeterminism:
    def _run(self, seed):
        from repro import (
            AbortInjector,
            MossRWLockingObject,
            RandomPolicy,
            WorkloadConfig,
            certify,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=seed, top_level=4, objects=3)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = AbortInjector(RandomPolicy(seed), abort_rate=0.1, seed=seed)
        result = run_system(
            system, policy, system_type, max_steps=5000, resolve_deadlocks=True
        )
        certificate = certify(result.behavior, system_type)
        return result.behavior, certificate

    def test_identical_runs_and_witnesses(self):
        behavior1, certificate1 = self._run(17)
        behavior2, certificate2 = self._run(17)
        assert behavior1 == behavior2
        assert certificate1.witness == certificate2.witness
        assert list(certificate1.graph.edges()) == list(certificate2.graph.edges())

    def test_different_seeds_differ(self):
        behavior1, _ = self._run(17)
        behavior2, _ = self._run(18)
        assert behavior1 != behavior2
