"""Tests for the Pearce–Kelly incremental topology (`repro.core.graph`).

The structure must agree with the naive full-DFS check at every single
edge insert: it stays silent exactly as long as the graph is acyclic,
reports a well-formed cycle at the first insert that would close one,
and maintains a topological index consistent with every recorded edge.
"""

import random

import pytest

from repro import Digraph, IncrementalTopology


class TestBasics:
    def test_forward_insert_is_free(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "b") is None
        assert topo.add_edge("b", "c") is None
        assert topo.last_affected == 0  # indices already consistent
        assert topo.index_of("a") < topo.index_of("b") < topo.index_of("c")

    def test_out_of_order_insert_reorders(self):
        topo = IncrementalTopology()
        topo.add_node("a")
        topo.add_node("b")
        # b was registered after a, so b -> a is out of index order
        assert topo.add_edge("b", "a") is None
        assert topo.last_affected > 0
        assert topo.index_of("b") < topo.index_of("a")
        assert topo.check_invariant()

    def test_self_loop_is_a_cycle(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "a") == ["a", "a"]

    def test_two_cycle(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "b") is None
        assert topo.add_edge("b", "a") == ["b", "a", "b"]

    def test_duplicate_edge_is_ignored(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "b") is None
        assert topo.add_edge("a", "b") is None
        assert len(topo) == 2

    def test_cycle_leaves_order_consistent(self):
        """A rejected edge is not recorded; the order stays valid."""
        topo = IncrementalTopology()
        topo.add_edge("a", "b")
        topo.add_edge("b", "c")
        assert topo.add_edge("c", "a") is not None
        assert not topo.has_edge("c", "a")
        assert topo.check_invariant()
        # and the structure remains usable for acyclic inserts
        assert topo.add_edge("a", "c") is None
        assert topo.check_invariant()

    def test_longer_cycle_path_is_reported(self):
        topo = IncrementalTopology()
        for src, dst in [("a", "b"), ("b", "c"), ("c", "d")]:
            assert topo.add_edge(src, dst) is None
        cycle = topo.add_edge("d", "a")
        assert cycle is not None
        assert cycle[0] == cycle[-1] == "d"
        assert set(cycle) == {"a", "b", "c", "d"}

    def test_as_digraph_round_trip(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(2, 3)
        graph = topo.as_digraph()
        assert set(graph.nodes()) == {1, 2, 3}
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3)
        assert graph.is_acyclic()


class TestAgainstNaive:
    """Insert-for-insert agreement with `Digraph.find_cycle` on random graphs."""

    @pytest.mark.parametrize("trial", range(50))
    def test_cycle_detected_at_the_same_insert(self, trial):
        rng = random.Random(trial)
        node_count = rng.randint(2, 14)
        topo = IncrementalTopology()
        naive = Digraph()
        for _ in range(rng.randint(1, 40)):
            src, dst = rng.randrange(node_count), rng.randrange(node_count)
            cycle = topo.add_edge(src, dst)
            naive.add_edge(src, dst)
            if cycle is None:
                assert naive.is_acyclic(), (trial, src, dst)
                assert topo.check_invariant(), (trial, src, dst)
            else:
                # the naive graph (with the edge) must agree it is cyclic,
                # and the reported cycle must be closed and real
                assert not naive.is_acyclic(), (trial, src, dst)
                assert cycle[0] == cycle[-1]
                for a, b in zip(cycle, cycle[1:]):
                    assert naive.has_edge(a, b), (trial, cycle)
                break

    @pytest.mark.parametrize("trial", range(20))
    def test_index_respects_every_edge_on_random_dags(self, trial):
        """Insert random *forward-safe* edges; the order must stay valid."""
        rng = random.Random(1000 + trial)
        node_count = rng.randint(3, 20)
        # random DAG: only edges low -> high in a hidden permutation
        hidden = list(range(node_count))
        rng.shuffle(hidden)
        rank = {node: position for position, node in enumerate(hidden)}
        topo = IncrementalTopology()
        edges = []
        for _ in range(rng.randint(5, 60)):
            a, b = rng.sample(range(node_count), 2)
            src, dst = (a, b) if rank[a] < rank[b] else (b, a)
            assert topo.add_edge(src, dst) is None, (trial, src, dst)
            edges.append((src, dst))
        assert topo.check_invariant()
        for src, dst in edges:
            assert topo.index_of(src) < topo.index_of(dst)
