"""Tests for the built-in data types' sequential semantics."""

import pytest

from repro.spec.builtin import (
    EMPTY,
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    Dequeue,
    Enqueue,
    QueueType,
    RegisterType,
    RegRead,
    RegWrite,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Withdraw,
)
from repro.spec.datatype import IllegalOperation


class TestRegister:
    def test_apply(self):
        reg = RegisterType(initial=0)
        state, value = reg.apply(0, RegWrite(5))
        assert (state, value) == (5, OK)
        state, value = reg.apply(5, RegRead())
        assert (state, value) == (5, 5)

    def test_replay_and_legality(self):
        reg = RegisterType(initial=0)
        assert reg.is_legal(((RegWrite(3), OK), (RegRead(), 3)))
        assert not reg.is_legal(((RegWrite(3), OK), (RegRead(), 0)))
        with pytest.raises(IllegalOperation):
            reg.replay(((RegRead(), 99),))

    def test_foreign_op_rejected(self):
        with pytest.raises(TypeError):
            RegisterType().apply(None, "bogus")


class TestCounter:
    def test_apply(self):
        counter = CounterType(initial=0)
        assert counter.apply(0, CounterInc(3)) == (3, OK)
        assert counter.apply(3, CounterInc(-5)) == (-2, OK)
        assert counter.apply(7, CounterRead()) == (7, 7)

    def test_results_along(self):
        counter = CounterType(initial=1)
        pairs = counter.results_along([CounterInc(2), CounterRead()])
        assert pairs == [(CounterInc(2), OK), (CounterRead(), 3)]


class TestSet:
    def test_apply(self):
        s = SetType()
        state, value = s.apply(frozenset(), SetInsert(1))
        assert state == frozenset({1}) and value == OK
        state, value = s.apply(state, SetMember(1))
        assert value is True
        state, value = s.apply(state, SetRemove(1))
        assert state == frozenset() and value == OK
        _, value = s.apply(state, SetMember(1))
        assert value is False

    def test_initial(self):
        s = SetType(initial=frozenset({1, 2}))
        assert s.initial == frozenset({1, 2})
        assert s.result_of((), SetMember(2)) is True


class TestBankAccount:
    def test_deposit_withdraw(self):
        account = BankAccountType(initial=10)
        assert account.apply(10, Deposit(5)) == (15, OK)
        assert account.apply(15, Withdraw(15)) == (0, OK)
        assert account.apply(0, Withdraw(1)) == (0, BankAccountType.FAIL)
        assert account.apply(7, BalanceRead()) == (7, 7)

    def test_negative_amounts_rejected(self):
        with pytest.raises(ValueError):
            Deposit(-1)
        with pytest.raises(ValueError):
            Withdraw(-1)
        with pytest.raises(ValueError):
            BankAccountType(initial=-5)

    def test_replay_overdraft_sequence(self):
        account = BankAccountType(initial=10)
        pairs = (
            (Withdraw(7), OK),
            (Withdraw(7), BankAccountType.FAIL),
            (Deposit(4), OK),
            (Withdraw(7), OK),
        )
        assert account.replay(pairs) == 0
        assert account.is_legal(pairs)
        assert not account.is_legal(((Withdraw(100), OK),))


class TestQueue:
    def test_fifo_order(self):
        queue = QueueType()
        pairs = queue.results_along([Enqueue("a"), Enqueue("b"), Dequeue(), Dequeue()])
        assert [value for _, value in pairs] == [OK, OK, "a", "b"]

    def test_empty_dequeue(self):
        queue = QueueType()
        assert queue.apply((), Dequeue()) == ((), EMPTY)

    def test_initial_contents(self):
        queue = QueueType(initial=("x",))
        assert queue.result_of((), Dequeue()) == "x"

    def test_illegal_replay(self):
        queue = QueueType()
        assert not queue.is_legal(((Dequeue(), "ghost"),))
        assert queue.is_legal(((Dequeue(), EMPTY),))


class TestProtocol:
    def test_conflicts_is_negated_commutes(self):
        counter = CounterType()
        assert counter.conflicts(CounterInc(1), OK, CounterRead(), 0)
        assert not counter.conflicts(CounterInc(1), OK, CounterInc(2), OK)

    def test_states_equivalent_default(self):
        assert CounterType().states_equivalent(3, 3)
        assert not CounterType().states_equivalent(3, 4)
