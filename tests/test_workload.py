"""Tests for the workload generator."""

import pytest

from repro import (
    ROOT,
    CounterKind,
    RWKind,
    SetKind,
    WorkloadConfig,
    generate_workload,
)
from repro.sim.programs import AccessCall, SubtransactionCall, collect_programs
from repro.core.rw_semantics import ReadOp, WriteOp


class TestConfig:
    def test_defaults(self):
        config = WorkloadConfig()
        assert isinstance(config.kind, RWKind)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(max_depth=0)
        with pytest.raises(ValueError):
            WorkloadConfig(hot_object_bias=2.0)


class TestGeneration:
    def test_deterministic_in_seed(self):
        a1, p1 = generate_workload(WorkloadConfig(seed=5))
        a2, p2 = generate_workload(WorkloadConfig(seed=5))
        assert p1 == p2
        assert a1.all_accesses() == a2.all_accesses()

    def test_different_seeds_differ(self):
        _, p1 = generate_workload(WorkloadConfig(seed=1))
        _, p2 = generate_workload(WorkloadConfig(seed=2))
        assert p1 != p2

    def test_root_program_spawns_top_level(self):
        config = WorkloadConfig(top_level=5, seed=0)
        _, programs = generate_workload(config)
        assert set(programs) == {ROOT}
        root = programs[ROOT]
        assert len(root.calls) == 5
        assert all(isinstance(c, SubtransactionCall) for c in root.calls)
        assert not root.sequential

    def test_accesses_registered(self):
        system_type, programs = generate_workload(WorkloadConfig(seed=0))
        flat = collect_programs(programs)
        for name, program in flat.items():
            for call in program.calls:
                if isinstance(call, AccessCall):
                    child = name.child(call.component)
                    assert system_type.is_access(child)
                    assert system_type.object_of(child) == call.obj

    def test_depth_bounded(self):
        config = WorkloadConfig(
            max_depth=2, subtransaction_probability=1.0, seed=3, top_level=3
        )
        system_type, programs = generate_workload(config)
        for access in system_type.all_accesses():
            # depth: root child (1) + nesting <= 2 + access leaf
            assert access.depth <= config.max_depth + 1

    def test_rw_kind_ops(self):
        system_type, _ = generate_workload(WorkloadConfig(seed=0, kind=RWKind()))
        ops = {type(a.op) for a in system_type.all_accesses().values()}
        assert ops <= {ReadOp, WriteOp}

    def test_counter_kind_ops(self):
        from repro.spec.builtin import CounterInc, CounterRead, CounterType

        system_type, _ = generate_workload(
            WorkloadConfig(seed=0, kind=CounterKind())
        )
        ops = {type(a.op) for a in system_type.all_accesses().values()}
        assert ops <= {CounterInc, CounterRead}
        for obj in system_type.object_names():
            assert isinstance(system_type.spec(obj), CounterType)

    def test_hot_object_bias(self):
        from repro import ObjectName

        config = WorkloadConfig(
            seed=0, objects=8, top_level=20, hot_object_bias=1.0, max_calls=3
        )
        system_type, _ = generate_workload(config)
        objects_touched = {a.obj for a in system_type.all_accesses().values()}
        assert objects_touched == {ObjectName("X0")}

    def test_object_count(self):
        system_type, _ = generate_workload(WorkloadConfig(seed=0, objects=7))
        assert len(system_type.object_names()) == 7
