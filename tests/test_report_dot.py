"""Satellite coverage for :mod:`repro.report`: DOT validity and summaries.

The DOT checks are structural — balanced braces, one cluster per sibling
group, the documented CONFLICT vs PRECEDES edge styling — so a Graphviz
binary is not required.
"""

import re

from repro import (
    CONFLICT,
    PRECEDES,
    SerializationGraph,
    SiblingEdge,
    build_serialization_graph,
    serialization_graph_to_dot,
)
from repro.report import behavior_summary

from conftest import T, lost_update_behavior, serial_two_txn_behavior


def mixed_edge_graph() -> SerializationGraph:
    """A two-group graph with both edge kinds (and a multi-kind edge)."""
    graph = SerializationGraph()
    graph.add_edge(SiblingEdge(T("T1"), T("T2"), CONFLICT))
    graph.add_edge(SiblingEdge(T("T1"), T("T2"), PRECEDES))
    graph.add_edge(SiblingEdge(T("T1", "a"), T("T1", "b"), CONFLICT))
    graph.add_node(T("T3"))
    return graph


class TestDotValidity:
    def test_braces_balanced_and_wrapped(self):
        behavior, system = lost_update_behavior()
        dot = serialization_graph_to_dot(
            build_serialization_graph(behavior, system)
        )
        assert dot.count("{") == dot.count("}")
        assert dot.startswith("digraph SG {")
        assert dot.rstrip().endswith("}")

    def test_one_cluster_per_sibling_group(self):
        graph = mixed_edge_graph()
        dot = serialization_graph_to_dot(graph)
        clusters = re.findall(r"subgraph cluster_(\d+)", dot)
        assert len(clusters) == len(graph.parents())
        # cluster indices are consecutive and labelled with the parent
        assert clusters == [str(i) for i in range(len(clusters))]
        for parent in graph.parents():
            assert f'label="children of {parent}";' in dot

    def test_edge_styles_distinguish_kinds(self):
        dot = serialization_graph_to_dot(mixed_edge_graph())
        conflict_lines = [
            line for line in dot.splitlines() if 'label="conflict"' in line
        ]
        precedes_lines = [
            line for line in dot.splitlines() if 'label="precedes"' in line
        ]
        assert conflict_lines and precedes_lines
        assert all('color="firebrick"' in line for line in conflict_lines)
        assert all(
            'color="steelblue"' in line and "style=dashed" in line
            for line in precedes_lines
        )

    def test_every_node_and_edge_rendered(self):
        graph = mixed_edge_graph()
        dot = serialization_graph_to_dot(graph)
        for node in graph.nodes():
            assert f'"{node}"' in dot
        for edge in graph.edges():
            assert f'"{edge.source}" -> "{edge.target}"' in dot
        # isolated nodes survive the rendering
        assert f'"{T("T3")}";' in dot

    def test_quoting_keeps_dotted_names_parseable(self):
        # transaction names contain dots — they must be quoted everywhere
        dot = serialization_graph_to_dot(mixed_edge_graph())
        for line in dot.splitlines():
            stripped = line.strip()
            if stripped.endswith('";') or " -> " in stripped:
                assert stripped.count('"') % 2 == 0


class TestBehaviorSummary:
    def test_line_content(self):
        behavior, system = serial_two_txn_behavior()
        lines = behavior_summary(behavior, system)
        assert len(lines) == 4
        assert lines[0].startswith("events: ")
        assert f"{len(behavior)} total" in lines[0]
        assert "committed: 4" in lines[1] and "aborted: 0" in lines[1]
        assert lines[2].startswith("accesses answered: ")
        assert lines[3] == f"objects: {len(system.object_names())}"

    def test_counts_aborts(self):
        behavior, system = lost_update_behavior()
        lines = behavior_summary(behavior, system)
        joined = "\n".join(lines)
        assert "transactions committed:" in joined
        assert "aborted:" in joined
