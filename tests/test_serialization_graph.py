"""Tests for the serialization graph construction (conflict/precedes/SG)."""

from repro import (
    CONFLICT,
    PRECEDES,
    SiblingEdge,
    build_serialization_graph,
    conflict_pairs,
    precedes_pairs,
)

from conftest import (
    BehaviorBuilder,
    T,
    blind_write_cycle_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)


class TestConflictPairs:
    def test_rw_conflict_produces_edge(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.read(t2, "r", "x", 1)
        b.commit(t1)
        b.commit(t2)
        edges = conflict_pairs(b.build(), system)
        assert SiblingEdge(T("t1"), T("t2"), CONFLICT) in edges

    def test_read_read_no_edge(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.read(t1, "r", "x", 0)
        b.read(t2, "r", "x", 0)
        b.commit(t1)
        b.commit(t2)
        assert conflict_pairs(b.build(), system) == []

    def test_different_objects_no_edge(self):
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.write(t2, "w", "y", 1)
        b.commit(t1)
        b.commit(t2)
        assert conflict_pairs(b.build(), system) == []

    def test_invisible_accesses_excluded(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.write(t2, "w", "x", 2)
        b.commit(t1)
        # t2 never commits: its write is not visible to T0, no edge
        assert conflict_pairs(b.build(), system) == []

    def test_edge_direction_follows_event_order(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t2, "w", "x", 2)  # t2's access first
        b.write(t1, "w", "x", 1)
        b.commit(t1)
        b.commit(t2)
        edges = conflict_pairs(b.build(), system)
        assert edges == [SiblingEdge(T("t2"), T("t1"), CONFLICT)]

    def test_nested_conflict_lifted_to_lca_children(self):
        # conflicts between grandchildren produce edges between the
        # children of their least common ancestor
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        u1, u2 = b.begin(t.child("u1")), b.begin(t.child("u2"))
        b.write(u1, "w", "x", 1)
        b.read(u2, "r", "x", 1)
        b.commit(u1)
        b.commit(u2)
        b.commit(t)
        edges = conflict_pairs(b.build(), system)
        assert edges == [SiblingEdge(t.child("u1"), t.child("u2"), CONFLICT)]

    def test_ancestor_descendant_conflicts_ignored(self):
        # an access conflicting with its own subtransaction's access
        # imposes no sibling ordering
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        u = b.begin(t.child("u"))
        b.read(u, "r", "x", 1)
        b.commit(u)
        b.commit(t)
        edges = conflict_pairs(b.build(), system)
        # w is a child of t, u is a child of t; they are siblings though!
        # The *sibling* pair (w, u) is real; check it is exactly that.
        assert edges == [SiblingEdge(t.child("w"), t.child("u"), CONFLICT)]


class TestPrecedesPairs:
    def test_sequential_children_produce_edge(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 1)
        b.commit(t1)
        t2 = b.begin_top("t2")  # REQUEST_CREATE after t1's report
        b.read(t2, "r", "x", 1)
        b.commit(t2)
        edges = precedes_pairs(b.build())
        assert SiblingEdge(T("t1"), T("t2"), PRECEDES) in edges

    def test_concurrent_children_no_edge(self):
        behavior, _ = lost_update_behavior()
        top_level = [
            e for e in precedes_pairs(behavior) if e.source in (T("t1"), T("t2"))
        ]
        assert top_level == []

    def test_aborted_sibling_still_precedes(self):
        # external consistency applies to aborted children too: the parent
        # saw the abort report before requesting the next child
        from repro import Abort, ReportAbort, RequestCreate

        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = T("t1")
        b.emit(RequestCreate(t1), Abort(t1), ReportAbort(t1))
        t2 = b.begin_top("t2")
        b.commit(t2, value="v")
        edges = precedes_pairs(b.build())
        assert SiblingEdge(t1, T("t2"), PRECEDES) in edges

    def test_parent_must_be_visible(self):
        # inner precedes pair under a parent that never commits is excluded
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        u1 = b.begin(t.child("u1"))
        b.commit(u1)
        u2 = b.begin(t.child("u2"))
        b.commit(u2)
        # t itself never commits
        edges = precedes_pairs(b.build())
        assert all(edge.parent != t for edge in edges)


class TestSerializationGraph:
    def test_acyclic_serial(self):
        behavior, system = serial_two_txn_behavior()
        graph = build_serialization_graph(behavior, system)
        assert graph.is_acyclic()
        assert graph.find_cycle() is None

    def test_lost_update_cycle(self):
        behavior, system = lost_update_behavior()
        graph = build_serialization_graph(behavior, system)
        assert not graph.is_acyclic()
        parent, cycle = graph.find_cycle()
        assert parent == T()
        assert set(cycle) <= {T("t1"), T("t2")}

    def test_blind_write_cycle(self):
        behavior, system = blind_write_cycle_behavior()
        graph = build_serialization_graph(behavior, system)
        assert not graph.is_acyclic()

    def test_to_sibling_order_topological(self):
        behavior, system = serial_two_txn_behavior()
        graph = build_serialization_graph(behavior, system)
        order = graph.to_sibling_order()
        assert order.holds(T("t1"), T("t2"))  # conflict + precedes direction

    def test_nodes_seeded_from_requests(self):
        behavior, system = serial_two_txn_behavior()
        graph = build_serialization_graph(behavior, system)
        assert T("t1") in graph.nodes()
        assert T("t2") in graph.nodes()

    def test_edges_iteration_kinds(self):
        behavior, system = serial_two_txn_behavior()
        graph = build_serialization_graph(behavior, system)
        kinds = {edge.kind for edge in graph.edges()}
        assert kinds <= {CONFLICT, PRECEDES}
        assert PRECEDES in kinds

    def test_networkx_export(self):
        behavior, system = lost_update_behavior()
        graph = build_serialization_graph(behavior, system)
        nx_graph = graph.to_networkx()
        assert nx_graph.has_edge(T("t1"), T("t2"))
        assert nx_graph.has_edge(T("t2"), T("t1"))
