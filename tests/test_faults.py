"""Tests for abort injection and recovery behaviour under faults."""

from repro import (
    Abort,
    AbortInjector,
    EagerInformPolicy,
    MossRWLockingObject,
    RandomPolicy,
    UndoLoggingObject,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)

from conftest import T


def run_with_aborts(object_factory, abort_rate, seed, **workload_kw):
    system_type, programs = generate_workload(
        WorkloadConfig(seed=seed, top_level=4, objects=2, **workload_kw)
    )
    system = make_generic_system(system_type, programs, object_factory)
    policy = AbortInjector(RandomPolicy(seed), abort_rate=abort_rate, seed=seed)
    result = run_system(system, policy, system_type, max_steps=4000)
    return result, system_type, policy


class TestAbortInjector:
    def test_zero_rate_never_aborts(self):
        result, _, policy = run_with_aborts(MossRWLockingObject, 0.0, seed=1)
        assert policy.aborts_injected == 0
        assert result.stats.aborted == 0

    def test_high_rate_aborts(self):
        result, _, policy = run_with_aborts(MossRWLockingObject, 0.5, seed=1)
        assert policy.aborts_injected > 0
        assert result.stats.aborted == policy.aborts_injected

    def test_invalid_rate_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            AbortInjector(RandomPolicy(0), abort_rate=1.5)

    def test_victim_filter(self):
        # only abort non-top-level transactions
        system_type, programs = generate_workload(
            WorkloadConfig(seed=2, top_level=4, objects=2, max_depth=2,
                           subtransaction_probability=0.9)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = AbortInjector(
            RandomPolicy(2),
            abort_rate=0.4,
            seed=2,
            victim_filter=lambda t: t.depth > 1,
        )
        result = run_system(system, policy, system_type, max_steps=4000)
        for action in result.behavior:
            if isinstance(action, Abort):
                assert action.transaction.depth > 1

    def test_max_aborts_budget(self):
        _, _, policy = run_with_aborts(
            MossRWLockingObject, 0.9, seed=3, max_depth=2
        )
        limited = AbortInjector(RandomPolicy(3), abort_rate=0.9, seed=3, max_aborts=2)
        system_type, programs = generate_workload(
            WorkloadConfig(seed=3, top_level=6, objects=2)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        run_system(system, limited, system_type, max_steps=4000)
        assert limited.aborts_injected <= 2


class TestRecoveryCorrectness:
    def test_moss_correct_under_abort_storm(self):
        for seed in range(4):
            result, system_type, _ = run_with_aborts(
                MossRWLockingObject, 0.3, seed=seed
            )
            certificate = certify(result.behavior, system_type)
            assert certificate.certified, certificate.explain()
            assert not certificate.witness_problems

    def test_undo_correct_under_abort_storm(self):
        from repro import CounterKind

        for seed in range(4):
            result, system_type, _ = run_with_aborts(
                UndoLoggingObject, 0.3, seed=seed, kind=CounterKind()
            )
            certificate = certify(result.behavior, system_type)
            assert certificate.certified, certificate.explain()
            assert not certificate.witness_problems


class TestScriptedAbortInjector:
    @staticmethod
    def _run(victims, seed=0, inject_rate=1.0):
        from repro.core.names import TransactionName
        from repro.sim.faults import ScriptedAbortInjector

        system_type, programs = generate_workload(
            WorkloadConfig(seed=seed, top_level=4, objects=2)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = ScriptedAbortInjector(
            EagerInformPolicy(seed=seed),
            {TransactionName((name,)) for name in victims},
            seed=seed,
            inject_rate=inject_rate,
        )
        result = run_system(system, policy, system_type, max_steps=4000)
        return result, policy

    def test_victims_never_commit(self):
        from repro.core.actions import Commit

        for seed in range(5):
            result, policy = self._run({"t0", "t2"}, seed=seed)
            committed = {
                action.transaction.path[0]
                for action in result.behavior
                if isinstance(action, Commit) and action.transaction.depth == 1
            }
            assert committed.isdisjoint({"t0", "t2"})
            assert policy.aborts_injected >= 1

    def test_victims_abort_even_with_low_inject_rate(self):
        # commit_imminent forces the abort regardless of the rate
        from repro.core.actions import Commit

        for seed in range(3):
            result, _ = self._run({"t1"}, seed=seed, inject_rate=0.01)
            for action in result.behavior:
                if isinstance(action, Commit) and action.transaction.depth == 1:
                    assert action.transaction.path != ("t1",)

    def test_non_victims_unaffected(self):
        result, policy = self._run(set(), seed=1)
        assert policy.aborts_injected == 0
        assert result.stats.aborted == 0

    def test_invalid_inject_rate_rejected(self):
        import pytest

        from repro.sim.faults import ScriptedAbortInjector

        with pytest.raises(ValueError, match="inject_rate"):
            ScriptedAbortInjector(EagerInformPolicy(seed=0), set(), inject_rate=0.0)
