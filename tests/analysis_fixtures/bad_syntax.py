"""Known-bad fixture: unparsable module (E000)."""

def broken(:
    return
