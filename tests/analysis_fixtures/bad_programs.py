"""Known-bad fixture for R005: hand-built registry next to a program."""

from repro.core.names import Access, ObjectName, SystemType, TransactionName
from repro.core.rw_semantics import ReadOp
from repro.sim.programs import TransactionProgram, read, seq


def hand_built_scenario():
    # constructs a program AND registers its access by hand — the
    # registry and the program can drift apart (R005 check 1); the
    # module also never calls system_type_for/collect_programs (check 2)
    x = ObjectName("x")
    program = seq(read(x))
    system_type = SystemType({x: None})
    leaf = TransactionName(("t1", "read_x"))
    system_type.register_access(leaf, Access(x, ReadOp()))
    return program, system_type


def orphan_program():
    return TransactionProgram((), sequential=True)
