"""Known-bad fixture for R004: unguarded and mutating action handlers."""


class UnguardedAutomaton:
    """Derives a new state without ever inspecting the action."""

    def effect(self, state, action):  # no precondition check -> R004
        return state + 1


class MutatingAutomaton:
    """Checks the action but then mutates the state argument in place."""

    def effect(self, state, action):
        if not isinstance(action, int):
            raise ValueError(action)
        state.pending.append(action)  # in-place mutation -> R004
        state.count += 1  # in-place mutation -> R004
        return state


class WellBehavedAutomaton:
    """Guards on the action and derives a fresh state: no findings."""

    def effect(self, state, action):
        if not isinstance(action, int):
            raise ValueError(action)
        return state + action

    def step(self, state, action):
        return self.effect(state, action)  # delegation counts as a guard


class AbstractAutomaton:
    """Trivial declarations are skipped."""

    def effect(self, state, action):
        """The abstract contract; subclasses dispatch on the action."""

    def step(self, state, action):
        ...
