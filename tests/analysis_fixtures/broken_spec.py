"""Known-bad specs for the spec-soundness checker (S001–S003).

Each class breaks exactly one property the checker proves:

* :class:`AsymmetricSpec` — ``conflicts`` depends on argument order
  (S001);
* :class:`LyingReadOnlySpec` — claims its increment is read-only
  (S002, ``read_only_claim``) and lets two "read-only" operations
  conflict (S002, ``read_only_conflict``);
* :class:`OverCommutingSpec` — claims *everything* commutes backward,
  including a read with the increment that changed the value it
  returned, which the definitional check refutes (S003).

All three reuse the counter operations from ``repro.spec.builtin``.
"""

from repro.spec.builtin import CounterInc, CounterRead, CounterType


class AsymmetricSpec(CounterType):
    """Breaks symmetry: (inc, read) conflicts but (read, inc) commutes."""

    type_name = "asymmetric-counter"

    def commutes_backward(self, op1, value1, op2, value2):
        if isinstance(op1, CounterInc) and isinstance(op2, CounterRead):
            return False
        return True


class LyingReadOnlySpec(CounterType):
    """Claims CounterInc is read-only (it mutates every state)."""

    type_name = "lying-read-only-counter"

    def is_read_only(self, op):
        return True  # even for CounterInc

    def commutes_backward(self, op1, value1, op2, value2):
        # Two "read-only" ops that conflict: breaks the fast path too.
        return not (
            isinstance(op1, CounterRead) and isinstance(op2, CounterRead)
        )


class OverCommutingSpec(CounterType):
    """Claims everything commutes — reads included — which is false."""

    type_name = "over-commuting-counter"

    def commutes_backward(self, op1, value1, op2, value2):
        return True
