"""Known-bad fixture for R003: quadratic scans inside hot-path loops.

Lives under a ``core/`` directory on purpose — R003 only fires on
hot-path modules.
"""


def find_dupes(events, interesting):
    dupes = []
    for event in events:
        if event in [e for e in events if e.name == event.name]:  # -> R003
            dupes.append(event)
        if event in list(interesting):  # -> R003
            dupes.append(event)
    return dupes


def positions(events, order):
    out = []
    for event in events:
        out.append(order.index(event))  # -> R003
    return out


def bounded_scan(events, allowed_names):
    hits = []
    for event in events:
        if event in sorted(allowed_names):  # lint: allow-quadratic
            hits.append(event)
    return hits


def loop_tagged(events, allowed_names):
    hits = []
    for event in events:  # lint: allow-R003
        if event in list(allowed_names):
            hits.append(event)
    return hits


def outside_any_loop(events, allowed_names):
    return [event for event in events if event in list(allowed_names)]
