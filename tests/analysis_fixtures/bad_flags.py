"""Known-bad fixture for R001: a declared A/B flag with a dead branch.

``certify_things`` declares ``indexed=`` but never consults it with a
conditional nor forwards it — the optimised/naive pairing is dead.
``delegating`` forwards the flag as a keyword, which is fine.
"""


def certify_things(events, indexed=True):  # flag never consulted -> R001
    return list(events)


def delegating(events, indexed=True):
    return certify_things(events, indexed=indexed)  # forwarding: fine
