"""Known-bad fixture for R002: print, bare except, mutable defaults.

Never imported — parsed by the lint engine in ``tests/test_analysis.py``.
"""


def report(results, sink=[]):  # mutable default -> R002
    print("results:", results)  # print in library code -> R002
    try:
        sink.append(results)
    except:  # bare except -> R002
        pass
    return sink


def tabulate(rows, cache={}):  # mutable default -> R002
    quiet_print = print  # aliasing alone is fine; only calls are flagged
    return quiet_print, len(rows), cache


def fresh(items=list()):  # mutable factory default -> R002
    return items


def allowed(results):
    print("suppressed:", results)  # lint: allow-R002
    return results
