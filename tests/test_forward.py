"""Tests for forward commutativity and its separation from backward."""

from repro.spec.builtin import (
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    RegRead,
    RegWrite,
    RegisterType,
    Withdraw,
)
from repro.spec.commutativity import exhaustive_prefixes
from repro.spec.forward import (
    forward_backward_disagreements,
    forward_commutes,
    forward_commutes_on_prefix,
)


class TestForwardPrimitive:
    def test_increments_commute_forward(self):
        counter = CounterType()
        assert (
            forward_commutes_on_prefix(
                counter, (), (CounterInc(1), OK), (CounterInc(2), OK)
            )
            is None
        )

    def test_read_inc_do_not_commute_forward(self):
        counter = CounterType()
        # from state 0 both read(0) and inc are individually legal, but
        # read(0) after inc is illegal
        reason = forward_commutes_on_prefix(
            counter, (), (CounterRead(), 0), (CounterInc(1), OK)
        )
        assert reason is not None

    def test_vacuous_when_not_individually_legal(self):
        counter = CounterType()
        # read(5) is not legal after the empty prefix: vacuous
        assert (
            forward_commutes_on_prefix(
                counter, (), (CounterRead(), 5), (CounterInc(1), OK)
            )
            is None
        )


class TestWeihlSeparation:
    def test_withdrawals_commute_backward_but_not_forward(self):
        """The canonical [16] example, cited by the paper's footnote 10."""
        account = BankAccountType(initial=15)
        w1 = (Withdraw(10), OK)
        w2 = (Withdraw(10), OK)
        # backward: the exact (test-verified) table says they commute
        assert account.commutes_backward(w1[0], w1[1], w2[0], w2[1])
        # forward: from balance 15 each alone succeeds, both in sequence
        # cannot — the definitional check finds the violation
        prefixes = exhaustive_prefixes(account, [Deposit(5), Withdraw(10)], 2)
        assert not forward_commutes(account, w1, w2, prefixes)

    def test_disagreement_enumeration(self):
        account = BankAccountType(initial=15)
        prefixes = exhaustive_prefixes(account, [Deposit(5), Withdraw(10)], 2)
        pairs = [
            (Withdraw(10), OK),
            (Deposit(5), OK),
            (BalanceRead(), 15),
        ]
        disagreements = forward_backward_disagreements(account, pairs, prefixes)
        kinds = {(str(f[0]), str(s[0]), which) for f, s, which in disagreements}
        assert ("withdraw(10)", "withdraw(10)", "backward-only") in kinds

    def test_register_separates_in_the_other_direction(self):
        """Registers witness a *forward-only* pair.

        ``write(1)`` and ``read -> 1`` commute forward — the read is
        individually legal only when the state is already 1, and then the
        write changes nothing — but not backward (write-then-read(1) is
        legal from any state, while the swapped read is not).  Together
        with the bank account this shows the two relations are
        incomparable, as Weihl [16] proves.
        """
        register = RegisterType(initial=0)
        operations = [RegWrite(1), RegWrite(2), RegRead()]
        prefixes = exhaustive_prefixes(register, operations, 2)
        pairs = [
            (RegWrite(1), OK),
            (RegWrite(2), OK),
            (RegRead(), 0),
            (RegRead(), 1),
        ]
        disagreements = forward_backward_disagreements(register, pairs, prefixes)
        assert (
            ((RegWrite(1), OK), (RegRead(), 1), "forward-only") in disagreements
            or ((RegRead(), 1), (RegWrite(1), OK), "forward-only") in disagreements
        )
        # and no backward-only pairs for this type
        assert all(which == "forward-only" for _, __, which in disagreements)

    def test_counter_relations_coincide(self):
        counter = CounterType()
        operations = [CounterInc(1), CounterInc(-1), CounterRead()]
        prefixes = exhaustive_prefixes(counter, operations, 2)
        pairs = [(CounterInc(1), OK), (CounterInc(-1), OK), (CounterRead(), 0)]
        assert forward_backward_disagreements(counter, pairs, prefixes) == []
