"""Tests for metric exposition: Prometheus text format, JSONL snapshots.

Like the stream tests, everything async is driven through
:func:`asyncio.run` — ``pytest-asyncio`` is not a dependency.  The
round-trip tests are the acceptance criterion for the exposition
format: whatever :func:`to_prometheus` renders, :func:`parse_prometheus`
must read back into the same numbers.
"""

import asyncio
import io
import json
import math

import pytest

from repro.obs import (
    JSONLFileSink,
    MetricsRegistry,
    SnapshotExporter,
    Tracer,
    load_jsonl_trace,
    load_snapshots,
    parse_prometheus,
    prometheus_name,
    render_registry,
    to_prometheus,
)


def run(coroutine):
    return asyncio.run(coroutine)


def populated_registry():
    registry = MetricsRegistry()
    registry.inc("online.actions", 41)
    registry.inc("stream.sessions.opened", 3)
    registry.set_gauge("sg.nodes", 17)
    registry.set_gauge("driver.progress", 0.75)
    histogram = registry.histogram("stream.latency.feed_to_verdict")
    for value in (1e-4, 2e-3, 2e-3, 0.5, 20.0):  # 20 s lands in +inf
        histogram.observe(value)
    return registry


class TestPrometheusName:
    def test_dots_become_underscores_under_namespace(self):
        assert (
            prometheus_name("stream.latency.feed_to_verdict")
            == "repro_stream_latency_feed_to_verdict"
        )

    def test_namespace_not_doubled(self):
        assert prometheus_name("repro_already_flat") == "repro_already_flat"

    def test_illegal_characters_collapse(self):
        assert prometheus_name("a.b-c d", namespace="") == "a_b_c_d"


class TestRoundTrip:
    def test_counters_gauges_histograms_round_trip(self):
        registry = populated_registry()
        snapshot = registry.snapshot()
        families = parse_prometheus(render_registry(registry))

        assert families["repro_online_actions"] == {
            "type": "counter",
            "value": 41,
        }
        assert families["repro_driver_progress"] == {
            "type": "gauge",
            "value": 0.75,
        }
        hist = families["repro_stream_latency_feed_to_verdict"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(snapshot["histograms"][
            "stream.latency.feed_to_verdict"
        ]["sum"])
        # bucket samples are cumulative and end at +Inf == count
        cumulative = list(hist["buckets"].values())
        assert cumulative == sorted(cumulative)
        assert hist["buckets"]["+Inf"] == 5

    def test_cumulative_buckets_match_per_bucket_counts(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        hist = parse_prometheus(render_registry(registry))["repro_h"]
        assert hist["buckets"] == {"1.0": 1, "2.0": 3, "4.0": 4, "+Inf": 5}

    def test_round_trip_through_json_snapshot(self):
        """The snapshot-file shape (JSON round-tripped) renders the same."""
        registry = populated_registry()
        reparsed = json.loads(json.dumps(registry.snapshot()))
        assert to_prometheus(reparsed) == render_registry(registry)

    def test_output_is_deterministic_and_newline_terminated(self):
        registry = populated_registry()
        text = render_registry(registry)
        assert text == render_registry(registry)
        assert text.endswith("\n")
        # families are sorted by name within each instrument kind
        by_kind = {}
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                by_kind.setdefault(kind, []).append(name)
        for names in by_kind.values():
            assert names == sorted(names)

    def test_infinite_gauge_survives(self):
        registry = MetricsRegistry()
        registry.set_gauge("weird", math.inf)
        families = parse_prometheus(render_registry(registry))
        assert families["repro_weird"]["value"] == math.inf

    def test_unparseable_line_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a sample\n")


class TestSnapshotExporter:
    def test_periodic_snapshots_and_final_on_close(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"

        async def scenario():
            registry = MetricsRegistry()
            registry.inc("work.items")
            exporter = SnapshotExporter(registry, path, interval=0.01)
            await exporter.start()
            await asyncio.sleep(0.06)
            await exporter.close()
            return registry

        registry = run(scenario())
        records = load_snapshots(path)
        assert len(records) >= 2  # at least one periodic + the final
        assert [record["sequence"] for record in records] == list(
            range(len(records))
        )
        # the exporter observes itself: the counter equals the dump count
        counters = registry.snapshot()["counters"]
        assert counters["obs.export.snapshots"] == len(records)
        assert records[-1]["snapshot"]["counters"]["work.items"] == 1

    def test_close_without_start_writes_single_final_snapshot(self, tmp_path):
        path = tmp_path / "single.jsonl"

        async def scenario():
            exporter = SnapshotExporter(MetricsRegistry(), path, interval=5.0)
            await exporter.close()

        run(scenario())
        assert len(load_snapshots(path)) == 1

    def test_buffered_final_snapshot_flushed_under_asyncio_run(self):
        """The shutdown guarantee: a file-object destination holds every
        written record after ``close()`` even though asyncio.run tears
        the loop down immediately afterwards."""
        buffer = io.StringIO()

        async def scenario():
            registry = MetricsRegistry()
            exporter = SnapshotExporter(registry, buffer, interval=0.01)
            await exporter.start()
            await asyncio.sleep(0.03)
            await exporter.close()

        run(scenario())
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert len(lines) >= 2
        assert all("snapshot" in json.loads(line) for line in lines)

    def test_writer_error_captured_and_reraised_on_close(self):
        class ExplodingFile(io.StringIO):
            def __init__(self):
                super().__init__()
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 1:
                    raise OSError("disk full")
                return super().write(text)

        destination = ExplodingFile()

        async def scenario():
            registry = MetricsRegistry()
            exporter = SnapshotExporter(registry, destination, interval=0.01)
            await exporter.start()
            # wait until the failing write has happened
            for _ in range(100):
                await asyncio.sleep(0.01)
                if exporter.error is not None:
                    break
            with pytest.raises(OSError, match="disk full"):
                await exporter.close()
            return exporter

        exporter = run(scenario())
        assert isinstance(exporter.error, OSError)
        # no final snapshot was attempted after the error
        assert destination.writes == 2

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            SnapshotExporter(MetricsRegistry(), io.StringIO(), interval=0.0)


class TestJSONLFileSinkShutdown:
    def test_buffered_spans_flushed_on_close_under_asyncio_run(self, tmp_path):
        """Spans buffered far below ``flush_every`` still reach the file
        once ``close()`` runs — the CLI relies on this in its finally."""
        path = tmp_path / "trace.jsonl"

        async def scenario():
            tracer = Tracer(JSONLFileSink(path, flush_every=10_000))
            try:
                for index in range(7):
                    with tracer.span(f"step{index}"):
                        await asyncio.sleep(0)
            finally:
                tracer.close()

        run(scenario())
        spans = load_jsonl_trace(path)
        assert [span["name"] for span in spans] == [
            f"step{index}" for index in range(7)
        ]
        assert all("wall_start" in span for span in spans)

    def test_spans_flushed_even_when_the_loop_body_raises(self, tmp_path):
        path = tmp_path / "partial.jsonl"

        async def scenario():
            tracer = Tracer(JSONLFileSink(path, flush_every=10_000))
            try:
                with tracer.span("completed"):
                    pass
                with tracer.span("failing"):
                    raise RuntimeError("boom")
            finally:
                tracer.close()

        with pytest.raises(RuntimeError, match="boom"):
            run(scenario())
        spans = load_jsonl_trace(path)
        assert [span["name"] for span in spans] == ["completed", "failing"]
        assert spans[1]["tags"].get("error") is True
