"""Property-based invariants of the general read/update locking automaton.

The analogues of the Moss lemma invariants (Lemmas 9-13), for ``M_X``
over arbitrary data types, checked on randomly driven well-formed
schedules: the update lockholders always form an ancestor chain, locks
conflict only between relatives, and the least update holder's state
equals the replay of the operations lock-visible to it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    ReadUpdateLockingObject,
    RequestCommit,
    SystemType,
    TransactionName,
)
from repro.locking.visibility import is_lock_visible, is_local_orphan
from repro.spec.builtin import (
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    SetInsert,
    SetMember,
    SetType,
)

C = ObjectName("c")


def build_universe(rng: random.Random):
    which = rng.randrange(3)
    if which == 0:
        spec = CounterType(initial=0)

        def sample():
            return CounterRead() if rng.random() < 0.3 else CounterInc(1)

    elif which == 1:
        spec = SetType()

        def sample():
            element = rng.randrange(3)
            return SetMember(element) if rng.random() < 0.3 else SetInsert(element)

    else:
        spec = BankAccountType(initial=30)

        def sample():
            from repro.spec.builtin import BalanceRead, Deposit

            return BalanceRead() if rng.random() < 0.3 else Deposit(2)

    system = SystemType({C: spec})
    names = []
    for i in range(6):
        path = [f"t{rng.randrange(3)}"]
        if rng.random() < 0.4:
            path.append(f"u{rng.randrange(2)}")
        path.append(f"a{i}")
        name = TransactionName(tuple(path))
        system.register_access(name, Access(C, sample()))
        names.append(name)
    return system, names


def random_schedule(seed: int, steps: int = 55):
    rng = random.Random(seed)
    system, names = build_universe(rng)
    obj = ReadUpdateLockingObject(C, system)
    state = obj.initial_state()
    trace = []
    created, responded, informed_commit, informed_abort = set(), set(), set(), set()
    for _ in range(steps):
        actions = []
        for name in names:
            if name not in created:
                actions.append(Create(name))
        actions.extend(obj.enabled_outputs(state))
        for name in responded | {n.parent for n in informed_commit if n.depth > 1}:
            if name not in informed_commit and name not in informed_abort:
                actions.append(InformCommit(C, name))
        for name in names:
            for ancestor in name.ancestors():
                if (
                    not ancestor.is_root
                    and ancestor not in informed_abort
                    and ancestor not in informed_commit
                ):
                    actions.append(InformAbort(C, ancestor))
        if not actions:
            break
        action = rng.choice(actions)
        state = obj.effect(state, action)
        trace.append(action)
        if isinstance(action, Create):
            created.add(action.transaction)
        elif isinstance(action, RequestCommit):
            responded.add(action.transaction)
        elif isinstance(action, InformCommit):
            informed_commit.add(action.transaction)
        elif isinstance(action, InformAbort):
            informed_abort.add(action.transaction)
    return system, obj, trace


def replay_states(obj, trace):
    state = obj.initial_state()
    yield (), state
    prefix = []
    for action in trace:
        state = obj.effect(state, action)
        prefix.append(action)
        yield tuple(prefix), state


@settings(max_examples=35, deadline=None)
@given(st.integers(0, 10_000))
def test_update_lockholders_form_chain(seed):
    system, obj, trace = random_schedule(seed)
    for _, state in replay_states(obj, trace):
        holders = sorted(state.update_lockholders, key=lambda n: n.depth)
        for shallow, deep in zip(holders, holders[1:]):
            assert shallow.is_ancestor_of(deep)


@settings(max_examples=35, deadline=None)
@given(st.integers(0, 10_000))
def test_conflicting_locks_are_related(seed):
    system, obj, trace = random_schedule(seed)
    for _, state in replay_states(obj, trace):
        for updater in state.update_lockholders:
            for holder in state.update_lockholders | state.read_lockholders:
                assert updater.is_related_to(holder)


@settings(max_examples=35, deadline=None)
@given(st.integers(0, 10_000))
def test_least_holder_state_replays_lock_visible_ops(seed):
    """The M_X analogue of Lemma 13: the tentative state carried by the
    least update lockholder equals the replay of the operations whose
    issuers are lock-visible to it."""
    system, obj, trace = random_schedule(seed)
    spec = system.spec(C)
    for prefix, state in replay_states(obj, trace):
        holders = state.update_lockholders
        least = max(holders, key=lambda n: n.depth)
        if is_local_orphan(prefix, C, least):
            continue
        visible_pairs = [
            (system.access(a.transaction).op, a.value)
            for a in prefix
            if isinstance(a, RequestCommit)
            and not spec.is_read_only(system.access(a.transaction).op)
            and is_lock_visible(prefix, C, a.transaction, least)
        ]
        expected = spec.replay(visible_pairs)
        assert spec.states_equivalent(state.state_of(least), expected), (
            least,
            prefix,
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_responses_unique(seed):
    system, obj, trace = random_schedule(seed)
    seen = set()
    for action in trace:
        if isinstance(action, RequestCommit):
            assert action.transaction not in seen
            seen.add(action.transaction)
