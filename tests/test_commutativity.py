"""Definitional verification of the backward-commutativity tables.

For each built-in type we enumerate every (operation, value) combination
realisable after a short legal prefix, then check the type's claimed
``commutes_backward`` verdicts against the paper's definition on all
those prefixes: claimed-commute pairs must satisfy the swap implication
everywhere, and claimed-conflict pairs must exhibit a concrete witness.
"""

import pytest

from repro.spec.builtin import (
    EMPTY,
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    Dequeue,
    Enqueue,
    QueueType,
    RegisterType,
    RegRead,
    RegWrite,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Withdraw,
)
from repro.spec.commutativity import (
    commutes_backward_on_prefix,
    exhaustive_prefixes,
    verify_commutativity_table,
)
from repro.core.rw_semantics import ReadOp, RWSpec, WriteOp


def jointly_realizable(datatype, operations, prefixes):
    """Ordered operation pairs that are adjacent-legal after some prefix.

    These are exactly the combinations the definition's hypothesis can
    fire on, so a claimed conflict among them must have a witness within
    the prefix set.
    """
    combos = set()
    for prefix in prefixes:
        state = datatype.replay(prefix)
        for first in operations:
            mid_state, value1 = datatype.apply(state, first)
            for second in operations:
                _, value2 = datatype.apply(mid_state, second)
                combos.add(((first, value1), (second, value2)))
    return sorted(combos, key=repr)


def check_type(datatype, operations, max_length=3):
    from repro.spec.commutativity import find_commutativity_counterexample

    prefixes = exhaustive_prefixes(datatype, operations, max_length)
    problems = []
    seen = set()
    for first, second in jointly_realizable(datatype, operations, prefixes):
        key = frozenset((first, second))
        if key in seen:
            continue
        seen.add(key)
        # symmetry of the claimed predicate
        forward = datatype.commutes_backward(first[0], first[1], second[0], second[1])
        backward = datatype.commutes_backward(second[0], second[1], first[0], first[1])
        assert forward == backward, (first, second)
        counterexample = find_commutativity_counterexample(
            datatype, first, second, prefixes
        )
        if counterexample is not None:
            problems.append(counterexample)
    assert problems == [], "\n".join(str(p) for p in problems)


class TestTablesMatchDefinition:
    def test_register(self):
        check_type(RegisterType(initial=0), [RegWrite(1), RegWrite(2), RegRead()])

    def test_counter(self):
        check_type(
            CounterType(initial=0),
            [CounterInc(1), CounterInc(-1), CounterInc(0), CounterRead()],
        )

    def test_set(self):
        check_type(
            SetType(),
            [SetInsert(1), SetInsert(2), SetRemove(1), SetMember(1), SetMember(2)],
        )

    def test_bank_account(self):
        check_type(
            BankAccountType(initial=10),
            [Deposit(5), Withdraw(5), Withdraw(20), BalanceRead()],
        )

    def test_queue(self):
        check_type(QueueType(), [Enqueue("a"), Enqueue("b"), Dequeue()], max_length=3)


class TestSpotChecks:
    def test_register_same_value_writes_commute(self):
        reg = RegisterType()
        assert reg.commutes_backward(RegWrite(5), OK, RegWrite(5), OK)
        assert not reg.commutes_backward(RegWrite(5), OK, RegWrite(6), OK)

    def test_register_read_write_always_conflict(self):
        reg = RegisterType()
        # even a read that returned the written value conflicts: the swap
        # implication fails when the write covered a different prior state
        assert not reg.commutes_backward(RegRead(), 5, RegWrite(5), OK)
        assert not reg.commutes_backward(RegRead(), 4, RegWrite(5), OK)

    def test_counter_updates_commute(self):
        counter = CounterType()
        assert counter.commutes_backward(CounterInc(3), OK, CounterInc(-7), OK)
        assert not counter.commutes_backward(CounterInc(3), OK, CounterRead(), 5)
        assert counter.commutes_backward(CounterInc(0), OK, CounterRead(), 5)

    def test_bank_successful_withdrawals_commute(self):
        account = BankAccountType()
        assert account.commutes_backward(Withdraw(5), OK, Withdraw(7), OK)
        assert not account.commutes_backward(Withdraw(5), OK, Deposit(3), OK)
        assert account.commutes_backward(
            Withdraw(5), BankAccountType.FAIL, BalanceRead(), 3
        )

    def test_queue_mostly_conflicts(self):
        queue = QueueType()
        assert not queue.commutes_backward(Enqueue("a"), OK, Enqueue("b"), OK)
        assert queue.commutes_backward(Enqueue("a"), OK, Enqueue("a"), OK)
        assert queue.commutes_backward(Enqueue("a"), OK, Dequeue(), "b")
        assert not queue.commutes_backward(Enqueue("a"), OK, Dequeue(), "a")
        assert not queue.commutes_backward(Enqueue("a"), OK, Dequeue(), EMPTY)
        assert queue.commutes_backward(Dequeue(), "a", Dequeue(), "a")
        assert not queue.commutes_backward(Dequeue(), "a", Dequeue(), "b")


class TestClassicalIsCoarser:
    def test_rwspec_conflicts_superset_of_exact_register(self):
        """The classical RW conflict rule subsumes the exact one.

        Whenever the exact register relation reports a conflict, the
        classical rule must also report one (it may report more — that
        headroom is the E7 concurrency gap).
        """
        reg = RegisterType(initial=0)
        classical = RWSpec(initial=0)
        combos = [
            (RegWrite(1), OK, WriteOp(1), OK),
            (RegWrite(2), OK, WriteOp(2), OK),
            (RegRead(), 0, ReadOp(), 0),
            (RegRead(), 1, ReadOp(), 1),
        ]
        for op1, v1, cop1, cv1 in combos:
            for op2, v2, cop2, cv2 in combos:
                if reg.conflicts(op1, v1, op2, v2):
                    assert classical.conflicts(cop1, cv1, cop2, cv2)

    def test_strict_gap_exists(self):
        # same-value writes: exact commutes, classical conflicts
        reg = RegisterType()
        classical = RWSpec()
        assert not reg.conflicts(RegWrite(1), OK, RegWrite(1), OK)
        assert classical.conflicts(WriteOp(1), OK, WriteOp(1), OK)


class TestDefinitionalPrimitive:
    def test_violation_reported_for_false_commute(self):
        counter = CounterType()
        # read(0) then inc(1) is legal from the empty prefix, but the
        # swapped order makes the read illegal: a violation both ways.
        reason = commutes_backward_on_prefix(
            counter, (), (CounterRead(), 0), (CounterInc(1), OK)
        )
        assert reason is not None
        reason = commutes_backward_on_prefix(
            counter, (), (CounterInc(1), OK), (CounterRead(), 1)
        )
        assert reason is not None

    def test_no_violation_for_true_commute(self):
        counter = CounterType()
        reason = commutes_backward_on_prefix(
            counter, (), (CounterInc(1), OK), (CounterInc(2), OK)
        )
        assert reason is None

    def test_vacuous_on_illegal_prefix(self):
        counter = CounterType()
        bad_prefix = ((CounterRead(), 999),)
        assert (
            commutes_backward_on_prefix(
                counter, bad_prefix, (CounterInc(1), OK), (CounterRead(), 1000)
            )
            is None
        )
