"""Cross-validation of the oracle against exhaustive serial enumeration.

The brute-force oracle decides serial correctness by searching sibling
orders and weaving witnesses.  On systems small enough to enumerate
*every* serial behavior outright, we can check it against the paper's
actual definition: ``beta`` is serially correct for ``T0`` iff some
serial behavior ``gamma`` has ``gamma | T0 == beta | T0``.
"""

import pytest

from repro import (
    ROOT,
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    RandomPolicy,
    RWSpec,
    enumerate_serial_behaviors,
    make_generic_system,
    make_serial_system,
    oracle_serially_correct,
    project_transaction,
    run_system,
    serial_projection,
)
from repro.sim.programs import TransactionProgram, read, seq, sub, system_type_for, write

from conftest import T

X = ObjectName("x")


def tiny_world():
    t1 = seq(write(X, 1, "w"), result="one")
    def t2_result(outcomes):
        outcome = outcomes["r"]
        return ("saw", outcome[1]) if outcome[0] == "commit" else ("saw", None)

    t2 = seq(read(X, "r"), result=t2_result)
    root = TransactionProgram((sub(t1, "t1"), sub(t2, "t2")), sequential=False)
    programs = {ROOT: root}
    system_type = system_type_for({X: RWSpec(initial=0)}, programs)
    return system_type, programs


def definitionally_correct(behavior, system_type, programs, max_steps=40):
    """The textbook definition: exists serial gamma with gamma|T0 == beta|T0."""
    target = project_transaction(serial_projection(behavior), ROOT)
    serial_system = make_serial_system(system_type, programs)
    for gamma in enumerate_serial_behaviors(
        serial_system, max_steps=max_steps, max_behaviors=120_000
    ):
        if project_transaction(gamma, ROOT) == target:
            return True
    return False


class TestOracleCompleteness:
    @pytest.mark.parametrize("seed", range(6))
    def test_oracle_agrees_with_definition_on_generic_runs(self, seed):
        system_type, programs = tiny_world()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = RandomPolicy(seed) if seed % 2 else EagerInformPolicy(seed=seed)
        result = run_system(
            system, policy, system_type, max_steps=2000, resolve_deadlocks=True
        )
        oracle = bool(oracle_serially_correct(result.behavior, system_type))
        definition = definitionally_correct(result.behavior, system_type, programs)
        assert oracle == definition, seed
        assert oracle  # Moss runs are correct (Theorem 17)

    def test_oracle_and_definition_reject_corrupted_run(self):
        from repro import RequestCommit

        system_type, programs = tiny_world()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=1), system_type, resolve_deadlocks=True
        )
        # corrupt the reported read value end-to-end (request + report)
        corrupted = []
        for action in result.behavior:
            if (
                hasattr(action, "value")
                and getattr(action, "transaction", None) == T("t2", "r")
            ):
                corrupted.append(type(action)(action.transaction, 999))
            elif (
                hasattr(action, "value")
                and getattr(action, "transaction", None) == T("t2")
                and isinstance(action.value, tuple)
            ):
                corrupted.append(type(action)(action.transaction, ("saw", 999)))
            else:
                corrupted.append(action)
        corrupted = tuple(corrupted)
        assert not oracle_serially_correct(corrupted, system_type)
        assert not definitionally_correct(corrupted, system_type, programs)

    def test_definition_tracks_transaction_values(self):
        # gamma|T0 equality includes report values: a serial behavior in
        # which t2 saw a different value does not witness correctness.
        system_type, programs = tiny_world()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=3), system_type, resolve_deadlocks=True
        )
        # the run is correct and the definition confirms it
        assert definitionally_correct(result.behavior, system_type, programs)
