"""Tests for the canonical scenario library."""

import pytest

from repro import certify, check_simple_behavior, oracle_serially_correct
from repro.cli import main
from repro.scenarios import SCENARIOS, build_scenario, scenario_names


class TestScenarioLibrary:
    @pytest.mark.parametrize("name", scenario_names())
    def test_scenarios_are_simple_behaviors(self, name):
        behavior, system_type, _ = build_scenario(name)
        assert check_simple_behavior(behavior, system_type) == []

    @pytest.mark.parametrize("name", scenario_names())
    def test_certifier_verdict_matches_expectation(self, name):
        behavior, system_type, expectation = build_scenario(name)
        certificate = certify(behavior, system_type)
        assert certificate.certified == expectation.certified, name
        if certificate.certified:
            assert not certificate.witness_problems

    @pytest.mark.parametrize("name", scenario_names())
    def test_ground_truth_matches_expectation(self, name):
        behavior, system_type, expectation = build_scenario(name)
        verdict = oracle_serially_correct(behavior, system_type, max_orders=5000)
        assert bool(verdict) == expectation.serially_correct, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_scenario("nonexistent")

    def test_soundness_of_expectations(self):
        # a certified scenario must always be serially correct
        for name, (_, expectation) in SCENARIOS.items():
            if expectation.certified:
                assert expectation.serially_correct, name


class TestScenariosCLI:
    def test_all_scenarios_ok(self, capsys):
        code = main(["scenarios"])
        output = capsys.readouterr().out
        assert code == 0
        assert "UNEXPECTED" not in output
        assert output.count("[OK]") == len(SCENARIOS)

    def test_single_scenario(self, capsys):
        code = main(["scenarios", "blind-writes"])
        output = capsys.readouterr().out
        assert code == 0
        assert "blind-writes" in output
        assert "[OK]" in output
