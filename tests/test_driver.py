"""Tests for the simulation driver and scheduling policies."""

import pytest

from repro import (
    Commit,
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    RandomPolicy,
    RoundRobinPolicy,
    RWSpec,
    SystemType,
    UndoLoggingObject,
    WorkloadConfig,
    generate_workload,
    make_generic_system,
    run_system,
)
from repro.sim.programs import TransactionProgram, par, read, seq, sub, write
from repro.sim.programs import system_type_for
from repro.core.names import ROOT, TransactionName

from conftest import T


def tiny_setup(sequential=True):
    X = ObjectName("x")
    t1 = seq(write(X, 1, "w"), result="one")
    t2 = seq(read(X, "r"), result="two")
    combine = seq if sequential else par
    root = TransactionProgram(
        (sub(t1, "t1"), sub(t2, "t2")), sequential=sequential
    )
    programs = {ROOT: root}
    system_type = system_type_for({X: RWSpec(initial=0)}, programs)
    return system_type, programs


class TestRunSystem:
    def test_sequential_run_to_quiescence(self):
        system_type, programs = tiny_setup(sequential=True)
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, RoundRobinPolicy(), system_type)
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 2
        assert Commit(T("t1")) in result.behavior
        assert Commit(T("t2")) in result.behavior

    def test_sequential_read_sees_write(self):
        system_type, programs = tiny_setup(sequential=True)
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, EagerInformPolicy(seed=1), system_type)
        from repro import RequestCommit

        reads = [
            a
            for a in result.behavior
            if isinstance(a, RequestCommit) and a.transaction == T("t2", "r")
        ]
        assert reads and reads[0].value == 1

    def test_random_policy_reproducible(self):
        system_type, programs = tiny_setup(sequential=False)
        runs = []
        for _ in range(2):
            system = make_generic_system(system_type, programs, MossRWLockingObject)
            runs.append(
                run_system(system, RandomPolicy(seed=42), system_type).behavior
            )
        assert runs[0] == runs[1]

    def test_step_limit_respected(self):
        system_type, programs = tiny_setup()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, RoundRobinPolicy(), system_type, max_steps=5)
        assert result.stats.steps == 5
        assert not result.stats.quiescent

    def test_undo_logging_driver(self):
        system_type, programs = tiny_setup()
        system = make_generic_system(system_type, programs, UndoLoggingObject)
        result = run_system(system, EagerInformPolicy(seed=0), system_type)
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 2

    def test_blocking_collected(self):
        # two concurrent writers on one object: someone must block under Moss
        X = ObjectName("x")
        root = TransactionProgram(
            (
                sub(seq(write(X, 1, "w")), "t1"),
                sub(seq(write(X, 2, "w")), "t2"),
            ),
            sequential=False,
        )
        programs = {ROOT: root}
        system_type = system_type_for({X: RWSpec(initial=0)}, programs)
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, RandomPolicy(seed=0), system_type, collect_blocking=True
        )
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 2
        assert result.stats.blocked_access_steps >= 0  # metric is collected

    def test_stats_counters(self):
        system_type, programs = tiny_setup()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, RoundRobinPolicy(), system_type)
        stats = result.stats
        assert stats.accesses_answered == 2
        assert stats.committed == stats.action_counts.get("Commit", 0)
        assert "steps=" in stats.summary()


class TestPolicies:
    def test_random_policy_none_on_empty(self):
        assert RandomPolicy(0).choose([]) is None

    def test_round_robin_cycles_kinds(self):
        from repro import Create, RequestCreate

        policy = RoundRobinPolicy()
        enabled = [RequestCreate(T("a")), Create(T("a"))]
        first = policy.choose(enabled)
        assert first == Create(T("a"))  # Create comes first in the rotation

    def test_eager_inform_prioritises_informs(self):
        from repro import Create, InformCommit

        policy = EagerInformPolicy(seed=0)
        inform = InformCommit(ObjectName("x"), T("a"))
        choice = policy.choose([Create(T("a")), inform])
        assert choice == inform


class TestMixedObjectAlgorithms:
    def test_per_object_factories(self):
        # the modular architecture allows different algorithms per object
        X, Y = ObjectName("x"), ObjectName("y")
        root = TransactionProgram(
            (
                sub(seq(write(X, 1, "wx"), read(Y, "ry")), "t1"),
            ),
            sequential=False,
        )
        programs = {ROOT: root}
        system_type = system_type_for(
            {X: RWSpec(initial=0), Y: RWSpec(initial=0)}, programs
        )
        factories = {X: MossRWLockingObject, Y: UndoLoggingObject}
        system = make_generic_system(system_type, programs, factories)
        result = run_system(system, EagerInformPolicy(seed=0), system_type)
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 1
