"""Tests for the online (incremental) certifier.

The headline property: after any fed prefix, the online verdict equals
the batch certifier's verdict on that prefix — including the
non-monotone ARV dynamics where a late commit makes an earlier
operation visible and flips the legality of operations after it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Commit,
    OnlineCertifier,
    certify,
    serial_projection,
)

from conftest import (
    BehaviorBuilder,
    T,
    blind_write_cycle_behavior,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)
from test_core_properties import random_simple_behavior


def batch_verdict(prefix, system):
    certificate = certify(prefix, system, construct_witness=False)
    return (
        certificate.certified,
        certificate.has_appropriate_return_values,
        certificate.graph_is_acyclic,
    )


class TestScenarios:
    def test_serial_certified(self):
        behavior, system = serial_two_txn_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert verdict.certified

    def test_lost_update_cycle_detected(self):
        behavior, system = lost_update_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert not verdict.certified
        assert verdict.cycle is not None

    def test_dirty_read_arv_detected(self):
        behavior, system = dirty_read_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert not verdict.certified
        assert verdict.arv_violations

    def test_blind_write_cycle_detected(self):
        behavior, system = blind_write_cycle_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert verdict.cycle is not None

    def test_cycle_latches(self):
        behavior, system = lost_update_behavior()
        certifier = OnlineCertifier(system)
        certifier.feed_all(behavior)
        first = certifier.verdict().cycle
        # feeding more unrelated actions never clears the cycle
        b = BehaviorBuilder(system)
        t3 = b.begin_top("t3")
        b.commit(t3)
        for action in b.build():
            certifier.feed(action)
        assert certifier.verdict().cycle == first

    def test_arv_violation_can_heal(self):
        """A read of an uncommitted write is an ARV violation *until* the
        writer's chain commits and the write becomes visible before it."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        writer = b.write(t1, "w", "x", 5)  # access commits; t1 does not yet
        b.read(t2, "r", "x", 5)
        b.commit(t2)
        certifier = OnlineCertifier(system)
        certifier.feed_all(b.build())
        assert certifier.verdict().arv_violations  # writer invisible: read of 5 illegal
        certifier.feed(Commit(t1))  # now the write precedes the read, visibly
        verdict = certifier.verdict()
        assert not verdict.arv_violations

    def test_informs_ignored(self):
        from repro import InformCommit, ObjectName

        system = rw_system("x")
        certifier = OnlineCertifier(system)
        certifier.feed(InformCommit(ObjectName("x"), T("t")))
        assert certifier.verdict().certified


class TestEquivalenceWithBatch:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_batch_on_every_prefix(self, seed):
        behavior, system = random_simple_behavior(seed, steps=35)
        certifier = OnlineCertifier(system)
        for cut, action in enumerate(behavior, start=1):
            certifier.feed(action)
            online = certifier.verdict()
            certified, arv_ok, acyclic = batch_verdict(behavior[:cut], system)
            assert online.certified == certified, (seed, cut)
            assert (not online.arv_violations) == arv_ok, (seed, cut)
            assert (online.cycle is None) == acyclic, (seed, cut)

    def test_matches_batch_on_driver_run(self):
        from repro import (
            EagerInformPolicy,
            MossRWLockingObject,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=5, top_level=4, objects=3)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=5), system_type, resolve_deadlocks=True
        )
        certifier = OnlineCertifier(system_type)
        verdict = certifier.feed_all(result.behavior)
        assert verdict.certified
        assert certify(result.behavior, system_type).certified


def random_contended_behavior(seed, transactions=3, objects=2):
    """A random interleaving of ``transactions`` top-level read-then-write
    transactions over ``objects`` hot objects, committed in random order.

    Interleavings where two transactions both read an object before
    either's write becomes visible produce lost-update SG cycles.
    """
    rng = random.Random(seed)
    names = [f"o{i}" for i in range(objects)]
    system = rw_system(*names)
    b = BehaviorBuilder(system)
    pending = {}
    for i in range(transactions):
        txn = b.begin_top(f"t{i}")
        obj = rng.choice(names)
        pending[txn] = [("r", obj), ("w", obj)]
    while pending:
        txn = rng.choice(sorted(pending))
        kind, obj = pending[txn].pop(0)
        if not pending[txn]:
            del pending[txn]
        if kind == "r":
            b.read(txn, "r", obj, 0)
        else:
            b.write(txn, "w", obj, rng.randrange(1, 97))
    order = sorted(T(f"t{i}") for i in range(transactions))
    rng.shuffle(order)
    for txn in order:
        b.commit(txn)
    return b.build(), system


class TestIncrementalVsNaiveEngines:
    """The A/B flag: both acyclicity engines produce identical verdicts."""

    def test_200_seeded_workloads_agree(self):
        rejected_seen = 0
        for seed in range(200):
            behavior, system = random_simple_behavior(seed, steps=30)
            incremental = OnlineCertifier(system).feed_all(behavior)
            naive = OnlineCertifier(system, incremental=False).feed_all(behavior)
            assert incremental.certified == naive.certified, seed
            assert incremental.arv_violations == naive.arv_violations, seed
            assert (incremental.cycle is None) == (naive.cycle is None), seed
            rejected_seen += not incremental.certified
        # the sweep must actually exercise both verdicts
        assert 0 < rejected_seen < 200

    def test_contended_interleavings_agree_and_produce_cycles(self):
        """Random interleavings of read-then-write transactions on shared
        objects — the workload shape that actually closes SG cycles
        (lost-update patterns), which `random_simple_behavior` never does.
        """
        cyclic_seen = 0
        for seed in range(60):
            behavior, system = random_contended_behavior(seed)
            incremental = OnlineCertifier(system).feed_all(behavior)
            naive = OnlineCertifier(system, incremental=False).feed_all(behavior)
            assert incremental.certified == naive.certified, seed
            assert (incremental.cycle is None) == (naive.cycle is None), seed
            cyclic_seen += incremental.cycle is not None
        # the sweep must actually exercise the cycle-latch path
        assert cyclic_seen > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100_000))
    def test_engines_agree_on_every_prefix(self, seed):
        behavior, system = random_simple_behavior(seed, steps=35)
        incremental = OnlineCertifier(system)
        naive = OnlineCertifier(system, incremental=False)
        for cut, action in enumerate(behavior, start=1):
            incremental.feed(action)
            naive.feed(action)
            a, b = incremental.verdict(), naive.verdict()
            assert a.certified == b.certified, (seed, cut)
            assert a.arv_violations == b.arv_violations, (seed, cut)
            assert (a.cycle is None) == (b.cycle is None), (seed, cut)

    def test_incremental_latches_a_real_cycle(self):
        """The latched cycle's consecutive pairs are edges of SG(beta)."""
        behavior, system = lost_update_behavior()
        certifier = OnlineCertifier(system)
        verdict = certifier.feed_all(behavior)
        assert verdict.cycle is not None
        parent, nodes = verdict.cycle
        assert nodes[0] == nodes[-1]
        group = certifier.graph.graph_for(parent)
        for src, dst in zip(nodes, nodes[1:]):
            assert group.has_edge(src, dst)

    def test_incremental_counters(self):
        from repro import MetricsRegistry

        behavior, system = lost_update_behavior()
        registry = MetricsRegistry()
        OnlineCertifier(system, metrics=registry).feed_all(behavior)
        counters = registry.snapshot()["counters"]
        assert counters["online.incremental.edge_inserts"] >= 2
        assert counters["online.cycle_latched"] == 1
        assert "online.cycle_checks" not in counters  # naive-only counter

    def test_naive_counters(self):
        from repro import MetricsRegistry

        behavior, system = lost_update_behavior()
        registry = MetricsRegistry()
        OnlineCertifier(system, incremental=False, metrics=registry).feed_all(
            behavior
        )
        counters = registry.snapshot()["counters"]
        assert counters["online.cycle_checks"] >= 2
        assert counters["online.cycle_latched"] == 1
        assert "online.incremental.edge_inserts" not in counters


class TestAbortAndDeadChainEdgeCases:
    """Visibility edge cases around aborts, for both acyclicity engines."""

    @pytest.fixture(params=[True, False], ids=["incremental", "naive"])
    def engine(self, request):
        return request.param

    def test_abort_after_latch_keeps_cycle_and_matches_batch(self, engine):
        """An abort kills a *pending* op's edge, never a latched cycle's.

        t3's access would have inserted mid-sequence on the cycle's
        object (triggering revalidation) had its chain committed; the
        abort marks the chain dead instead.  The latched cycle survives
        and the verdict still matches batch certification.
        """
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.read(t1, "r", "x", 0)
        b.read(t2, "r", "x", 0)
        b.write(t1, "w", "x", 1)
        b.write(t2, "w", "x", 2)
        b.commit(t1)
        b.commit(t2)  # lost update: cycle t1 <-> t2 latches here
        certifier = OnlineCertifier(system, incremental=engine)
        certifier.feed_all(b.build())
        latched = certifier.verdict().cycle
        assert latched is not None
        # t3 writes x but aborts before its chain commits
        b2 = BehaviorBuilder(system)
        t3 = b2.begin_top("t3")
        b2.write(t3, "w", "x", 9)
        b2.abort(t3)
        for action in b2.build():
            certifier.feed(action)
        verdict = certifier.verdict()
        assert verdict.cycle == latched  # the latch is monotone
        full = b.build() + b2.build()
        assert batch_verdict(full, system)[0] == verdict.certified

    def test_dead_chain_operation_never_becomes_visible(self, engine):
        """An access requested under an already-aborted ancestor is dead
        on arrival (`_chain_dead`): no visibility, no edges, no ARV."""
        from repro import (
            OK,
            Abort,
            Access,
            Create,
            ObjectName,
            ReportAbort,
            RequestCommit,
            RequestCreate,
            WriteOp,
        )

        system = rw_system("x")
        t1 = T("t1")
        access = t1.child("w")
        system.register_access(access, Access(ObjectName("x"), WriteOp(7)))
        behavior = (
            RequestCreate(t1),
            Abort(t1),          # aborted before ever being created
            ReportAbort(t1),
            RequestCreate(access),
            Create(access),
            RequestCommit(access, OK),
            Commit(access),     # the access chain commits under a dead t1
        )
        certifier = OnlineCertifier(system, incremental=engine)
        verdict = certifier.feed_all(behavior)
        assert verdict.certified
        assert certifier.graph.edge_count() == 0
        certified, arv_ok, acyclic = batch_verdict(behavior, system)
        assert verdict.certified == certified

    def test_abort_triggered_mid_sequence_revalidation(self, engine):
        """A late commit inserts mid-sequence while a competing pending
        write on the same object dies by abort; the suffix revalidates
        against the surviving history and matches batch on every prefix.
        """
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2, t3 = b.begin_top("t1"), b.begin_top("t2"), b.begin_top("t3")
        b.write(t1, "w", "x", 5)   # access committed, t1 still open
        b.write(t3, "w", "x", 8)   # access committed, t3 still open
        b.read(t2, "r", "x", 5)    # legal only once t1's write is visible
        b.commit(t2)
        b.abort(t3)                # t3's write dies: never inserts
        b.commit(t1)               # t1's write inserts *before* t2's read
        behavior = b.build()
        certifier = OnlineCertifier(system, incremental=engine)
        for cut, action in enumerate(behavior, start=1):
            certifier.feed(action)
            online = certifier.verdict()
            certified, arv_ok, acyclic = batch_verdict(behavior[:cut], system)
            assert online.certified == certified, cut
            assert (not online.arv_violations) == arv_ok, cut
            assert (online.cycle is None) == acyclic, cut
        assert certifier.verdict().certified


class TestEquivalenceOnDriverStreams:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_batch_on_aborting_nested_runs(self, seed):
        from repro import (
            AbortInjector,
            MossRWLockingObject,
            RandomPolicy,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(
                seed=seed, top_level=4, objects=2, max_depth=3,
                subtransaction_probability=0.5,
            )
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = AbortInjector(RandomPolicy(seed), abort_rate=0.15, seed=seed)
        result = run_system(
            system, policy, system_type, max_steps=4000, resolve_deadlocks=True
        )
        certifier = OnlineCertifier(system_type)
        for cut, action in enumerate(result.behavior, start=1):
            certifier.feed(action)
            if cut % 11 == 0 or cut == len(result.behavior):
                online = certifier.verdict()
                certified, arv_ok, acyclic = batch_verdict(
                    result.behavior[:cut], system_type
                )
                assert online.certified == certified, (seed, cut)
                assert (not online.arv_violations) == arv_ok, (seed, cut)
                assert (online.cycle is None) == acyclic, (seed, cut)
