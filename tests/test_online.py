"""Tests for the online (incremental) certifier.

The headline property: after any fed prefix, the online verdict equals
the batch certifier's verdict on that prefix — including the
non-monotone ARV dynamics where a late commit makes an earlier
operation visible and flips the legality of operations after it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Commit,
    OnlineCertifier,
    certify,
    serial_projection,
)

from conftest import (
    BehaviorBuilder,
    T,
    blind_write_cycle_behavior,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)
from test_core_properties import random_simple_behavior


def batch_verdict(prefix, system):
    certificate = certify(prefix, system, construct_witness=False)
    return (
        certificate.certified,
        certificate.has_appropriate_return_values,
        certificate.graph_is_acyclic,
    )


class TestScenarios:
    def test_serial_certified(self):
        behavior, system = serial_two_txn_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert verdict.certified

    def test_lost_update_cycle_detected(self):
        behavior, system = lost_update_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert not verdict.certified
        assert verdict.cycle is not None

    def test_dirty_read_arv_detected(self):
        behavior, system = dirty_read_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert not verdict.certified
        assert verdict.arv_violations

    def test_blind_write_cycle_detected(self):
        behavior, system = blind_write_cycle_behavior()
        verdict = OnlineCertifier(system).feed_all(behavior)
        assert verdict.cycle is not None

    def test_cycle_latches(self):
        behavior, system = lost_update_behavior()
        certifier = OnlineCertifier(system)
        certifier.feed_all(behavior)
        first = certifier.verdict().cycle
        # feeding more unrelated actions never clears the cycle
        b = BehaviorBuilder(system)
        t3 = b.begin_top("t3")
        b.commit(t3)
        for action in b.build():
            certifier.feed(action)
        assert certifier.verdict().cycle == first

    def test_arv_violation_can_heal(self):
        """A read of an uncommitted write is an ARV violation *until* the
        writer's chain commits and the write becomes visible before it."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        writer = b.write(t1, "w", "x", 5)  # access commits; t1 does not yet
        b.read(t2, "r", "x", 5)
        b.commit(t2)
        certifier = OnlineCertifier(system)
        certifier.feed_all(b.build())
        assert certifier.verdict().arv_violations  # writer invisible: read of 5 illegal
        certifier.feed(Commit(t1))  # now the write precedes the read, visibly
        verdict = certifier.verdict()
        assert not verdict.arv_violations

    def test_informs_ignored(self):
        from repro import InformCommit, ObjectName

        system = rw_system("x")
        certifier = OnlineCertifier(system)
        certifier.feed(InformCommit(ObjectName("x"), T("t")))
        assert certifier.verdict().certified


class TestEquivalenceWithBatch:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_batch_on_every_prefix(self, seed):
        behavior, system = random_simple_behavior(seed, steps=35)
        certifier = OnlineCertifier(system)
        for cut, action in enumerate(behavior, start=1):
            certifier.feed(action)
            online = certifier.verdict()
            certified, arv_ok, acyclic = batch_verdict(behavior[:cut], system)
            assert online.certified == certified, (seed, cut)
            assert (not online.arv_violations) == arv_ok, (seed, cut)
            assert (online.cycle is None) == acyclic, (seed, cut)

    def test_matches_batch_on_driver_run(self):
        from repro import (
            EagerInformPolicy,
            MossRWLockingObject,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=5, top_level=4, objects=3)
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=5), system_type, resolve_deadlocks=True
        )
        certifier = OnlineCertifier(system_type)
        verdict = certifier.feed_all(result.behavior)
        assert verdict.certified
        assert certify(result.behavior, system_type).certified


class TestEquivalenceOnDriverStreams:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_batch_on_aborting_nested_runs(self, seed):
        from repro import (
            AbortInjector,
            MossRWLockingObject,
            RandomPolicy,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(
                seed=seed, top_level=4, objects=2, max_depth=3,
                subtransaction_probability=0.5,
            )
        )
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        policy = AbortInjector(RandomPolicy(seed), abort_rate=0.15, seed=seed)
        result = run_system(
            system, policy, system_type, max_steps=4000, resolve_deadlocks=True
        )
        certifier = OnlineCertifier(system_type)
        for cut, action in enumerate(result.behavior, start=1):
            certifier.feed(action)
            if cut % 11 == 0 or cut == len(result.behavior):
                online = certifier.verdict()
                certified, arv_ok, acyclic = batch_verdict(
                    result.behavior[:cut], system_type
                )
                assert online.certified == certified, (seed, cut)
                assert (not online.arv_violations) == arv_ok, (seed, cut)
                assert (online.cycle is None) == acyclic, (seed, cut)
