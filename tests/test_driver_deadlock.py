"""Tests for driver-level deadlock detection and victim aborts."""

from repro import (
    Abort,
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    RoundRobinPolicy,
    RWSpec,
    certify,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.programs import (
    TransactionProgram,
    read,
    seq,
    sub,
    system_type_for,
    write,
)

from repro.core.actions import Create, RequestCommit
from repro.sim.policies import SchedulingPolicy

from conftest import T

X = ObjectName("x")
Y = ObjectName("y")


class ReadsFirstPolicy(SchedulingPolicy):
    """Deterministic policy that admits every read before any write.

    Drives the read-lock-coupling scenario into a genuine deadlock:
    both clients acquire read locks, then neither write can proceed.
    """

    def _priority(self, action):
        is_read_request = isinstance(action, RequestCommit) and str(
            action.transaction.path[-1]
        ).startswith("r")
        is_write_request = isinstance(action, RequestCommit) and str(
            action.transaction.path[-1]
        ).startswith("w")
        if isinstance(action, Create):
            return 0
        if is_read_request:
            return 1
        if is_write_request:
            return 3
        return 2

    def choose(self, enabled):
        if not enabled:
            return None
        return min(enabled, key=lambda a: (self._priority(a), str(a)))


def upgrade_deadlock():
    """Two clients read-then-write the same object: guaranteed deadlock."""
    programs = {
        ROOT: TransactionProgram(
            (
                sub(seq(read(X, "r"), write(X, 1, "w")), "c0"),
                sub(seq(read(X, "r"), write(X, 2, "w")), "c1"),
            ),
            sequential=False,
        )
    }
    return system_type_for({X: RWSpec(initial=0)}, programs), programs


def cross_deadlock():
    """Classic crossed exclusive locks on two objects."""
    programs = {
        ROOT: TransactionProgram(
            (
                sub(seq(write(X, 1, "wx"), write(Y, 1, "wy")), "c0"),
                sub(seq(write(Y, 2, "wy"), write(X, 2, "wx")), "c1"),
            ),
            sequential=False,
        )
    }
    specs = {X: RWSpec(initial=0), Y: RWSpec(initial=0)}
    return system_type_for(specs, programs), programs


class TestWithoutResolution:
    def test_upgrade_deadlock_leaves_both_live(self):
        system_type, programs = upgrade_deadlock()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(system, ReadsFirstPolicy(), system_type)
        assert result.stats.quiescent
        assert result.stats.top_level_committed == 0
        # the deadlocked prefix is still a behavior Theorem 17 covers
        assert certify(result.behavior, system_type).certified


class TestWithResolution:
    def test_upgrade_deadlock_resolved(self):
        system_type, programs = upgrade_deadlock()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, ReadsFirstPolicy(), system_type, resolve_deadlocks=True
        )
        assert result.stats.quiescent
        assert result.stats.deadlock_aborts == 1
        assert result.stats.top_level_committed == 1
        assert certify(result.behavior, system_type).certified

    def test_cross_deadlock_resolved(self):
        system_type, programs = cross_deadlock()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system,
            EagerInformPolicy(seed=1),
            system_type,
            resolve_deadlocks=True,
        )
        assert result.stats.quiescent
        assert result.stats.top_level_committed >= 1
        assert certify(result.behavior, system_type).certified

    def test_victims_are_top_level(self):
        system_type, programs = upgrade_deadlock()
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, ReadsFirstPolicy(), system_type, resolve_deadlocks=True
        )
        victims = [
            action.transaction
            for action in result.behavior
            if isinstance(action, Abort)
        ]
        assert victims and all(victim.depth == 1 for victim in victims)

    def test_no_spurious_resolution_without_contention(self):
        programs = {
            ROOT: TransactionProgram(
                (sub(seq(write(X, 1, "w")), "c0"),), sequential=False
            )
        }
        system_type = system_type_for({X: RWSpec(initial=0)}, programs)
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, RoundRobinPolicy(), system_type, resolve_deadlocks=True
        )
        assert result.stats.deadlock_aborts == 0
        assert result.stats.top_level_committed == 1
