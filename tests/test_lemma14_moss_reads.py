"""Direct tests of Lemma 14 / Proposition 15 on simulated Moss runs.

Lemma 14: in a generic system built from ``M1_X`` objects, every
REQUEST_COMMIT for a read access occurring in ``visible(beta, T0)`` is
*current* and *safe* in ``serial(beta)``.  Proposition 15 then gives
appropriate return values via Lemma 6.  We check the per-event
conditions directly on driver runs rather than only the end-to-end
certificate.
"""

import pytest

from repro import (
    ROOT,
    AbortInjector,
    EagerInformPolicy,
    MossRWLockingObject,
    RandomPolicy,
    RequestCommit,
    StatusIndex,
    WorkloadConfig,
    check_current_and_safe,
    generate_workload,
    has_appropriate_return_values,
    is_current,
    is_safe,
    make_generic_system,
    run_system,
    serial_projection,
)
from repro.core.rw_semantics import is_read_access


def moss_serial(seed, abort_rate=0.0):
    system_type, programs = generate_workload(
        WorkloadConfig(seed=seed, top_level=5, objects=3, max_depth=2)
    )
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    policy = (
        AbortInjector(RandomPolicy(seed), abort_rate=abort_rate, seed=seed)
        if abort_rate
        else EagerInformPolicy(seed=seed)
    )
    result = run_system(
        system, policy, system_type, max_steps=8000, resolve_deadlocks=True
    )
    return serial_projection(result.behavior), system_type


@pytest.mark.parametrize("seed", range(6))
def test_lemma14_visible_reads_current_and_safe(seed):
    serial, system_type = moss_serial(seed)
    index = StatusIndex(serial)
    checked = 0
    for position, action in enumerate(serial):
        if not isinstance(action, RequestCommit):
            continue
        name = action.transaction
        if not is_read_access(name, system_type):
            continue
        if not index.is_visible(name, ROOT):
            continue
        assert is_current(serial, position, system_type), (seed, action)
        assert is_safe(serial, position, system_type), (seed, action)
        checked += 1
    # the check must actually have bitten on something
    assert checked > 0 or not any(
        is_read_access(a.transaction, system_type)
        for a in serial
        if isinstance(a, RequestCommit)
    )


@pytest.mark.parametrize("seed", range(4))
def test_lemma14_under_aborts(seed):
    serial, system_type = moss_serial(seed, abort_rate=0.2)
    assert check_current_and_safe(serial, system_type) == []


@pytest.mark.parametrize("seed", range(4))
def test_proposition15_arv(seed):
    serial, system_type = moss_serial(seed, abort_rate=0.1)
    assert has_appropriate_return_values(serial, system_type)
