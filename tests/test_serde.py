"""Tests for JSON serialization of behaviors and system types."""

import pytest

from repro import (
    InformAbort,
    InformCommit,
    ObjectName,
    dump_case,
    load_case,
)
from repro.core.serde import (
    behavior_from_json,
    behavior_to_json,
    system_type_from_json,
    system_type_to_json,
)

from conftest import T, rw_system, serial_two_txn_behavior


class TestBehaviorRoundTrip:
    def test_serial_behavior(self):
        behavior, _ = serial_two_txn_behavior()
        assert behavior_from_json(behavior_to_json(behavior)) == behavior

    def test_informs(self):
        behavior = (
            InformCommit(ObjectName("x"), T("t")),
            InformAbort(ObjectName("y"), T("t", "u")),
        )
        assert behavior_from_json(behavior_to_json(behavior)) == behavior

    def test_values_varieties(self):
        from repro import RequestCommit, ReportCommit

        behavior = (
            RequestCommit(T("a"), None),
            RequestCommit(T("b"), 3.5),
            RequestCommit(T("c"), True),
            RequestCommit(T("d"), ("tu", ("ple", 1))),
            RequestCommit(T("e"), frozenset({1, 2})),
            ReportCommit(T("a"), None),
        )
        assert behavior_from_json(behavior_to_json(behavior)) == behavior

    def test_unencodable_value_rejected(self):
        from repro import RequestCommit

        class Weird:
            __hash__ = object.__hash__

        with pytest.raises(TypeError):
            behavior_to_json((RequestCommit(T("a"), Weird()),))


class TestSystemTypeRoundTrip:
    def test_rw_system(self):
        behavior, system = serial_two_txn_behavior()
        restored = system_type_from_json(system_type_to_json(system))
        assert restored.object_names() == system.object_names()
        assert restored.all_accesses() == system.all_accesses()
        assert restored.spec(ObjectName("x")).initial == 0

    def test_all_builtin_types(self):
        from repro import Access, SystemType
        from repro.spec.builtin import (
            BalanceRead,
            BankAccountType,
            CounterInc,
            CounterType,
            Dequeue,
            Enqueue,
            QueueType,
            RegisterType,
            RegWrite,
            SetInsert,
            SetType,
        )

        system = SystemType(
            {
                ObjectName("reg"): RegisterType(initial=0),
                ObjectName("ctr"): CounterType(initial=5),
                ObjectName("set"): SetType(initial=frozenset({1})),
                ObjectName("acct"): BankAccountType(initial=100),
                ObjectName("q"): QueueType(initial=("a",)),
            }
        )
        system.register_access(T("t", "a"), Access(ObjectName("reg"), RegWrite(3)))
        system.register_access(T("t", "b"), Access(ObjectName("ctr"), CounterInc(2)))
        system.register_access(T("t", "c"), Access(ObjectName("set"), SetInsert(7)))
        system.register_access(T("t", "d"), Access(ObjectName("acct"), BalanceRead()))
        system.register_access(T("t", "e"), Access(ObjectName("q"), Enqueue("z")))
        system.register_access(T("t", "f"), Access(ObjectName("q"), Dequeue()))
        restored = system_type_from_json(system_type_to_json(system))
        assert restored.all_accesses() == system.all_accesses()
        assert restored.spec(ObjectName("set")).initial == frozenset({1})
        assert restored.spec(ObjectName("q")).initial == ("a",)

    def test_unknown_spec_rejected(self):
        from repro import SystemType

        system = SystemType({ObjectName("x"): object()})
        with pytest.raises(TypeError):
            system_type_to_json(system)


class TestCaseRoundTrip:
    def test_dump_and_load(self):
        behavior, system = serial_two_txn_behavior()
        text = dump_case(behavior, system)
        restored_behavior, restored_system = load_case(text)
        assert restored_behavior == behavior
        assert restored_system.all_accesses() == system.all_accesses()

    def test_certification_survives_round_trip(self):
        from repro import certify

        behavior, system = serial_two_txn_behavior()
        restored_behavior, restored_system = load_case(dump_case(behavior, system))
        assert certify(restored_behavior, restored_system).certified

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_case('{"format": "nope"}')

    def test_driver_run_round_trip(self):
        from repro import (
            EagerInformPolicy,
            UndoLoggingObject,
            CounterKind,
            WorkloadConfig,
            certify,
            generate_workload,
            make_generic_system,
            run_system,
        )

        system_type, programs = generate_workload(
            WorkloadConfig(seed=9, top_level=3, objects=2, kind=CounterKind())
        )
        system = make_generic_system(system_type, programs, UndoLoggingObject)
        result = run_system(system, EagerInformPolicy(seed=9), system_type)
        behavior, restored = load_case(dump_case(result.behavior, system_type))
        assert behavior == result.behavior
        assert certify(behavior, restored).certified


class TestPropertyRoundTrip:
    def test_random_simple_behaviors_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from test_core_properties import random_simple_behavior

        @settings(max_examples=30, deadline=None)
        @given(st.integers(0, 100_000))
        def inner(seed):
            behavior, system = random_simple_behavior(seed)
            restored_behavior, restored_system = load_case(
                dump_case(behavior, system)
            )
            assert restored_behavior == behavior
            assert restored_system.all_accesses() == system.all_accesses()
            from repro import certify

            original = certify(behavior, system, construct_witness=False)
            replayed = certify(
                restored_behavior, restored_system, construct_witness=False
            )
            assert original.certified == replayed.certified

        inner()


class TestMapTypeRoundTrip:
    def test_map_spec_and_ops(self):
        from repro import Access, SystemType
        from repro.spec.builtin import MapGet, MapPut, MapRemove, MapType

        system = SystemType({ObjectName("m"): MapType(initial={"a": 1})})
        system.register_access(T("t", "p"), Access(ObjectName("m"), MapPut("b", 2)))
        system.register_access(T("t", "g"), Access(ObjectName("m"), MapGet("a")))
        system.register_access(T("t", "r"), Access(ObjectName("m"), MapRemove("a")))
        restored = system_type_from_json(system_type_to_json(system))
        assert restored.all_accesses() == system.all_accesses()
        assert restored.spec(ObjectName("m")).result_of((), MapGet("a")) == 1
