"""Tests for the :mod:`repro.stream` feed service.

``pytest-asyncio`` is deliberately not a dependency; every test drives
the event loop itself through :func:`asyncio.run`, which also mirrors
how the CLI subcommand uses the service.
"""

import asyncio

import pytest

from repro import OnlineCertifier
from repro.core.names import Access, ObjectName, SystemType
from repro.obs.metrics import MetricsRegistry
from repro.stream import (
    SessionResult,
    StreamConfig,
    StreamService,
    StreamWorkload,
    certify_stream,
    commit_as_you_go,
)

from conftest import BehaviorBuilder, rw_system
from test_core_properties import random_simple_behavior


def judgement(verdict):
    """The engine-independent verdict triple (cycle witness excluded)."""
    return (verdict.certified, verdict.arv_violations, verdict.cycle is None)


def run(coroutine):
    return asyncio.run(coroutine)


def simple_case(seed, steps=30):
    behavior, system = random_simple_behavior(seed, steps=steps)
    return list(behavior), system


class TestConfig:
    def test_rejects_nonpositive_workers_and_queues(self):
        with pytest.raises(ValueError):
            StreamConfig(workers=0)
        with pytest.raises(ValueError):
            StreamConfig(queue_size=0)


class TestVerdictParity:
    def test_matches_direct_certifier(self):
        """The service is a transport, not a judge: its verdicts must be
        exactly the direct certifier's (same compaction settings)."""

        async def scenario():
            config = StreamConfig(workers=2, compaction=True, compaction_interval=4)
            service = StreamService(config)
            await service.start()
            results = {}
            try:
                for seed in range(6):
                    behavior, system = simple_case(seed)
                    session = await service.open_session(f"s{seed}", system)
                    await session.feed_all(behavior)
                    results[seed] = (await session.close(), behavior, system)
            finally:
                await service.close()
            return results

        for seed, (result, behavior, system) in run(scenario()).items():
            direct = OnlineCertifier(
                system, compaction=True, compaction_interval=4
            ).feed_all(behavior)
            assert judgement(result.verdict) == judgement(direct), seed
            assert result.actions == len(behavior)

    def test_mid_stream_verdict_reflects_fed_prefix(self):
        async def scenario():
            system = rw_system("x")
            b = BehaviorBuilder(system)
            t1 = b.begin_top("t1")
            b.write(t1, "w", "x", 7)
            b.commit(t1)
            prefix = b.build()
            t2 = b.begin_top("t2")
            b.read(t2, "r", "x", 0)  # stale: ARV violation
            b.commit(t2)
            full = b.build()
            service = StreamService(StreamConfig())
            await service.start()
            try:
                session = await service.open_session("audit", system)
                await session.feed_all(prefix)
                midway = await session.verdict()
                await session.feed_all(full[len(prefix):])
                result = await session.close()
            finally:
                await service.close()
            return midway, result

        midway, result = run(scenario())
        assert midway.certified
        assert not result.verdict.certified
        assert result.verdict.arv_violations


class TestMultiplexing:
    def test_sessions_shard_round_robin_and_interleave(self):
        async def scenario():
            registry = MetricsRegistry()
            service = StreamService(StreamConfig(workers=3), metrics=registry)
            await service.start()
            cases = [simple_case(seed) for seed in range(6)]
            try:
                sessions = [
                    await service.open_session(f"s{i}", system)
                    for i, (_, system) in enumerate(cases)
                ]
                # feed round-robin one action at a time: maximal interleave
                cursors = [0] * len(cases)
                live = True
                while live:
                    live = False
                    for i, (behavior, _) in enumerate(cases):
                        if cursors[i] < len(behavior):
                            await sessions[i].feed(behavior[cursors[i]])
                            cursors[i] += 1
                            live = True
                results = [await session.close() for session in sessions]
            finally:
                await service.close()
            return cases, results, registry.snapshot()

        cases, results, snapshot = run(scenario())
        for i, ((behavior, system), result) in enumerate(zip(cases, results)):
            direct = OnlineCertifier(
                system, compaction=True, compaction_interval=64
            ).feed_all(behavior)
            assert judgement(result.verdict) == judgement(direct), i
        counters = snapshot["counters"]
        assert counters["stream.sessions.opened"] == 6
        assert counters["stream.sessions.closed"] == 6
        assert counters["stream.actions"] == sum(
            len(behavior) for behavior, _ in cases
        )
        assert snapshot["gauges"]["stream.workers"] == 3
        assert snapshot["gauges"]["stream.sessions.open"] == 0

    def test_duplicate_session_name_rejected(self):
        async def scenario():
            service = StreamService()
            await service.start()
            try:
                await service.open_session("dup", rw_system("x"))
                with pytest.raises(ValueError):
                    await service.open_session("dup", rw_system("x"))
            finally:
                await service.close()

        run(scenario())

    def test_open_before_start_rejected(self):
        async def scenario():
            service = StreamService()
            with pytest.raises(RuntimeError):
                await service.open_session("early", rw_system("x"))

        run(scenario())


class TestBackpressure:
    def test_tiny_queue_counts_backpressure_waits(self):
        async def scenario():
            registry = MetricsRegistry()
            service = StreamService(
                StreamConfig(workers=1, queue_size=1), metrics=registry
            )
            await service.start()
            behavior, system = simple_case(3, steps=40)
            try:
                session = await service.open_session("pressed", system)
                await session.feed_all(behavior)
                await session.close()
            finally:
                await service.close()
            return registry.snapshot()

        snapshot = run(scenario())
        counters = snapshot["counters"]
        # with a one-slot queue nearly every feed finds it full
        assert counters["stream.backpressure_waits"] > 0
        # every counted wait also lands its duration in the histogram
        waits = snapshot["histograms"]["stream.backpressure.seconds"]
        assert waits["count"] == counters["stream.backpressure_waits"]
        assert waits["sum"] >= 0.0
        assert waits["p95"] is not None


class TestLatencyTelemetry:
    def test_feed_to_verdict_histogram_counts_every_action(self):
        async def scenario():
            registry = MetricsRegistry()
            service = StreamService(StreamConfig(workers=2), metrics=registry)
            await service.start()
            cases = [simple_case(seed) for seed in range(3)]
            try:
                for i, (behavior, system) in enumerate(cases):
                    session = await service.open_session(f"s{i}", system)
                    await session.feed_all(behavior)
                    await session.close()
            finally:
                await service.close()
            return cases, registry.snapshot()

        cases, snapshot = run(scenario())
        latency = snapshot["histograms"]["stream.latency.feed_to_verdict"]
        assert latency["count"] == sum(len(b) for b, _ in cases)
        assert latency["min"] > 0.0
        for key in ("p50", "p95", "p99"):
            assert latency[key] is not None
            assert latency["min"] <= latency[key] <= latency["max"]

    def test_session_registry_gets_its_own_latency_series(self):
        async def scenario():
            service_registry = MetricsRegistry()
            session_registry = MetricsRegistry()
            service = StreamService(metrics=service_registry)
            await service.start()
            behavior, system = simple_case(5)
            try:
                session = await service.open_session(
                    "own", system, metrics=session_registry
                )
                await session.feed_all(behavior)
                await session.close()
            finally:
                await service.close()
            return len(behavior), service_registry, session_registry

        fed, service_registry, session_registry = run(scenario())
        for registry in (service_registry, session_registry):
            latency = registry.snapshot()["histograms"][
                "stream.latency.feed_to_verdict"
            ]
            assert latency["count"] == fed

    def test_shared_registry_not_double_counted(self):
        """``certify_stream`` hands one registry to both the service and
        the session; each action must be observed exactly once."""
        behavior, system = simple_case(4)
        registry = MetricsRegistry()
        result = run(
            certify_stream("shared", system, behavior, metrics=registry)
        )
        latency = registry.snapshot()["histograms"][
            "stream.latency.feed_to_verdict"
        ]
        assert latency["count"] == result.actions == len(behavior)

    def test_uninstrumented_path_stamps_no_latency(self):
        """With no registry anywhere the enqueue stamp stays 0.0 — the
        zero-overhead contract (no clock reads, no histograms)."""
        behavior, system = simple_case(6)
        result = run(certify_stream("dark", system, behavior))
        direct = OnlineCertifier(
            system, compaction=True, compaction_interval=64
        ).feed_all(behavior)
        assert judgement(result.verdict) == judgement(direct)


class _BrokenSpec:
    """A spec whose state transition always fails — forces a certifier
    error inside the worker loop."""

    initial = 0

    def apply(self, state, op):
        raise RuntimeError("broken spec")

    def conflicts(self, op1, value1, op2, value2):
        return False


class TestErrorSurfacing:
    def test_certifier_error_reraised_on_close(self):
        async def scenario():
            registry = MetricsRegistry()
            service = StreamService(metrics=registry)
            await service.start()
            system = SystemType({ObjectName("x"): _BrokenSpec()})
            b = BehaviorBuilder(system)
            t = b.begin_top("t")
            b.write(t, "w", "x", 1)
            b.commit(t)  # visibility triggers spec.apply, which raises
            try:
                session = await service.open_session("broken", system)
                await session.feed_all(b.build())
                with pytest.raises(RuntimeError, match="broken spec"):
                    await session.close()
            finally:
                await service.close()
            return registry.snapshot()["counters"]

        counters = run(scenario())
        assert counters["stream.errors"] >= 1

    def test_feed_after_close_rejected(self):
        async def scenario():
            system = rw_system("x")
            b = BehaviorBuilder(system)
            t = b.begin_top("t")
            b.write(t, "w", "x", 1)
            b.commit(t)
            behavior = b.build()
            service = StreamService()
            await service.start()
            try:
                session = await service.open_session("done", system)
                await session.feed_all(behavior)
                await session.close()
                with pytest.raises(RuntimeError):
                    await session.feed(behavior[0])
            finally:
                await service.close()

        run(scenario())


class TestCertifyStreamHelper:
    def test_sync_iterable(self):
        behavior, system = simple_case(1)
        result = run(certify_stream("oneshot", system, behavior))
        assert isinstance(result, SessionResult)
        direct = OnlineCertifier(
            system, compaction=True, compaction_interval=64
        ).feed_all(behavior)
        assert judgement(result.verdict) == judgement(direct)

    def test_async_iterator(self):
        behavior, system = simple_case(2)

        async def produce():
            for action in behavior:
                await asyncio.sleep(0)
                yield action

        result = run(certify_stream("async-oneshot", system, produce()))
        assert result.actions == len(behavior)

    def test_commit_as_you_go_stream_stays_bounded(self):
        """End-to-end: the workload generator through the service, with
        the compaction stats proving eviction actually ran."""
        workload = StreamWorkload(top_level=80, window=6, seed=3)
        system, actions = commit_as_you_go(workload)
        config = StreamConfig(compaction=True, compaction_interval=16)
        result = run(certify_stream("e2e", system, actions, config=config))
        assert result.actions == workload.event_estimate()
        assert result.compaction_stats["evicted_rows"] > 0
        assert result.compaction_stats["evicted_subtrees"] > 0
        assert result.compaction_stats["live_tracked_ops"] <= 8 * workload.window
