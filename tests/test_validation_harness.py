"""Tests for the user-facing algorithm validation battery."""

import pytest

from repro import (
    CounterKind,
    MossRWLockingObject,
    ObjectName,
    ReadUpdateLockingObject,
    RWKind,
    UndoLoggingObject,
)
from repro.extensions.mvto import MVTORWObject
from repro.generic.validation import validate_object_algorithm


class TestShippedAlgorithmsPass:
    def test_moss(self):
        report = validate_object_algorithm(
            MossRWLockingObject, RWKind(), seeds=range(3)
        )
        assert report.passed, report.summary()
        assert report.completion_order_always_held

    def test_undo_logging(self):
        report = validate_object_algorithm(
            UndoLoggingObject, CounterKind(), seeds=range(3)
        )
        assert report.passed, report.summary()
        assert report.completion_order_always_held

    def test_read_update(self):
        report = validate_object_algorithm(
            ReadUpdateLockingObject, CounterKind(), seeds=range(3)
        )
        assert report.passed, report.summary()

    def test_summary_text(self):
        report = validate_object_algorithm(
            MossRWLockingObject, RWKind(), seeds=range(2), abort_rates=(0.0,)
        )
        assert "PASSED" in report.summary()
        assert report.failures() == []


class TestMVTOIsFlaggedInformationally:
    def test_mvto_fails_certification_but_not_oracle(self):
        """MVTO is serially correct, so the oracle never contradicts it —
        but the single-version certifier rejects some runs, so the battery
        reports failures (this is the E10 boundary, surfaced per-run)."""
        report = validate_object_algorithm(
            MVTORWObject, RWKind(), seeds=range(6), abort_rates=(0.0,),
            max_depth=1,
        )
        rejected = [o for o in report.outcomes if not o.certified]
        # some seeds interleave innocuously and certify; at least one must
        # exhibit the multiversion gap
        assert rejected, "expected MVTO to trip the single-version test"
        # and no run may be *incorrect*: the oracle never returns False
        assert all(o.oracle_ok is not False for o in report.outcomes)


class TestBrokenAlgorithmIsCaught:
    def test_dirty_read_object_fails(self):
        """An object that ignores locking entirely (serves the latest value
        immediately, never undoes) must fail the battery."""
        from dataclasses import replace as dc_replace
        from typing import Iterator

        from repro.core.actions import (
            Action,
            Create,
            InformAbort,
            InformCommit,
            RequestCommit,
        )
        from repro.core.rw_semantics import OK, ReadOp, WriteOp
        from repro.generic.objects import GenericObject

        class YoloObject(GenericObject):
            """No concurrency control, no recovery: reads see raw writes."""

            def __init__(self, obj, system_type):
                super().__init__(obj, system_type)
                self.name = f"YOLO_{obj}"
                self.initial = system_type.spec(obj).initial

            def initial_state(self):
                return (frozenset(), self.initial)  # (answered, data)

            def enabled(self, state, action):
                if self.is_input(action):
                    return True
                if isinstance(action, RequestCommit):
                    answered, data = state
                    op = self.system_type.access(action.transaction).op
                    if action.transaction in answered:
                        return False
                    expected = OK if isinstance(op, WriteOp) else data
                    return action.value == expected
                return False

            def effect(self, state, action):
                answered, data = state
                if isinstance(action, RequestCommit):
                    op = self.system_type.access(action.transaction).op
                    if isinstance(op, WriteOp):
                        data = op.data
                    return (answered | {action.transaction}, data)
                return state  # ignores informs entirely: no undo!

            def enabled_outputs(self, state) -> Iterator[Action]:
                answered, data = state
                # answer any invoked access; we have no created-tracking,
                # so rely on accesses registry + answered set
                for access in sorted(self.system_type.all_accesses()):
                    if self.system_type.object_of(access) != self.obj:
                        continue
                    if access in answered:
                        continue
                    op = self.system_type.access(access).op
                    value = OK if isinstance(op, WriteOp) else data
                    yield RequestCommit(access, value)

        report = validate_object_algorithm(
            YoloObject, RWKind(), seeds=range(4), abort_rates=(0.2,)
        )
        assert not report.passed
        assert report.failures()
