"""Tests for lock-visible / locally-visible / local-orphan (Sections 5.3, 6.3)."""

from repro import InformAbort, InformCommit, ObjectName
from repro.locking.visibility import (
    inform_chain,
    is_local_orphan,
    is_lock_visible,
    is_locally_visible,
)

from conftest import T


X = ObjectName("x")
Y = ObjectName("y")


class TestInformChain:
    def test_chain_to_root(self):
        chain = inform_chain(T("a", "b", "c"), T())
        assert chain == [T("a", "b", "c"), T("a", "b"), T("a")]

    def test_chain_to_sibling_subtree(self):
        chain = inform_chain(T("a", "b"), T("a", "c"))
        assert chain == [T("a", "b")]

    def test_chain_to_ancestor_empty(self):
        assert inform_chain(T("a"), T("a", "b")) == []
        assert inform_chain(T("a"), T("a")) == []


class TestLocalOrphan:
    def test_orphan_via_ancestor_abort(self):
        behavior = (InformAbort(X, T("a")),)
        assert is_local_orphan(behavior, X, T("a", "b", "c"))
        assert is_local_orphan(behavior, X, T("a"))
        assert not is_local_orphan(behavior, X, T("b"))

    def test_other_object_informs_ignored(self):
        behavior = (InformAbort(Y, T("a")),)
        assert not is_local_orphan(behavior, X, T("a", "b"))


class TestLockVisible:
    def test_requires_leaf_to_root_order(self):
        up = (InformCommit(X, T("a", "b")), InformCommit(X, T("a")))
        down = (InformCommit(X, T("a")), InformCommit(X, T("a", "b")))
        assert is_lock_visible(up, X, T("a", "b"), T())
        assert not is_lock_visible(down, X, T("a", "b"), T())

    def test_locally_visible_any_order(self):
        down = (InformCommit(X, T("a")), InformCommit(X, T("a", "b")))
        assert is_locally_visible(down, X, T("a", "b"), T())

    def test_missing_link_not_visible(self):
        behavior = (InformCommit(X, T("a", "b")),)
        assert not is_lock_visible(behavior, X, T("a", "b"), T())
        assert not is_locally_visible(behavior, X, T("a", "b"), T())

    def test_empty_chain_trivially_visible(self):
        assert is_lock_visible((), X, T("a"), T("a", "b"))
        assert is_locally_visible((), X, T("a"), T("a", "b"))

    def test_interleaved_subsequence_accepted(self):
        behavior = (
            InformCommit(X, T("zzz")),
            InformCommit(X, T("a", "b")),
            InformAbort(X, T("other")),
            InformCommit(X, T("a")),
        )
        assert is_lock_visible(behavior, X, T("a", "b"), T())

    def test_wrong_object_ignored(self):
        behavior = (InformCommit(Y, T("a")),)
        assert not is_lock_visible(behavior, X, T("a"), T())
        assert not is_locally_visible(behavior, X, T("a"), T())

    def test_lock_visible_implies_locally_visible(self):
        behaviors = [
            (InformCommit(X, T("a", "b")), InformCommit(X, T("a"))),
            (InformCommit(X, T("a")),),
            (),
        ]
        cases = [(T("a", "b"), T()), (T("a"), T()), (T("a"), T("a", "c"))]
        for behavior in behaviors:
            for source, target in cases:
                if is_lock_visible(behavior, X, source, target):
                    assert is_locally_visible(behavior, X, source, target)
