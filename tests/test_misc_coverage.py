"""Edge-case coverage: CLI errors, report corners, API utilities."""

import json

import pytest

from repro import certify
from repro.cli import main
from repro.report import certificate_report, serialization_graph_to_dot
from repro.spec.builtin import CounterInc, CounterRead, CounterType, OK
from repro.spec.commutativity import (
    exhaustive_prefixes,
    random_legal_prefixes,
    verify_commutativity_table,
)

from conftest import lost_update_behavior, serial_two_txn_behavior


class TestCLIErrors:
    def test_audit_missing_file(self, capsys):
        code = main(["audit", "/nonexistent/run.json"])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_audit_invalid_json_structure(self, tmp_path, capsys):
        case = tmp_path / "bad.json"
        case.write_text(json.dumps({"format": "repro-case-v1"}))
        code = main(["audit", str(case)])
        assert code == 1
        assert "not a valid repro case" in capsys.readouterr().err

    def test_audit_wrong_format_marker(self, tmp_path, capsys):
        case = tmp_path / "bad.json"
        case.write_text(json.dumps({"format": "other"}))
        assert main(["audit", str(case)]) == 1

    def test_demo_witness_preview(self, capsys):
        code = main(["demo", "--seed", "0", "--witness", "5"])
        output = capsys.readouterr().out
        assert code == 0
        assert "witness serial behavior" in output


class TestReportCorners:
    def test_report_without_behavior_context(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system)
        text = certificate_report(certificate)
        assert "CERTIFIED" in text
        assert "events:" not in text  # no summary without context

    def test_dot_of_cyclic_graph(self):
        behavior, system = lost_update_behavior()
        certificate = certify(behavior, system)
        dot = serialization_graph_to_dot(certificate.graph)
        # both directions of the cycle are rendered
        assert dot.count("conflict") >= 2

    def test_report_on_malformed_input_certificate(self):
        from repro import Create
        from conftest import T, rw_system

        system = rw_system("x")
        certificate = certify(
            (Create(T("ghost")), Create(T("ghost"))), system, validate_input=True
        )
        text = certificate_report(certificate)
        assert "malformed input" in text


class TestCommutativityUtilities:
    def test_verify_commutativity_table_clean(self):
        counter = CounterType()
        prefixes = exhaustive_prefixes(counter, [CounterInc(1)], 2)
        pairs = [(CounterInc(1), OK), (CounterInc(2), OK)]
        assert verify_commutativity_table(counter, pairs, prefixes) == []

    def test_verify_commutativity_table_finds_violation(self):
        class LyingCounter(CounterType):
            def commutes_backward(self, op1, v1, op2, v2):
                return True  # wrong: claims reads commute with increments

        counter = LyingCounter()
        prefixes = exhaustive_prefixes(counter, [CounterInc(1), CounterRead()], 2)
        pairs = [(CounterInc(1), OK), (CounterRead(), 0)]
        problems = verify_commutativity_table(counter, pairs, prefixes)
        assert problems
        assert problems[0].claimed_commutes

    def test_random_legal_prefixes_are_legal(self):
        import random

        counter = CounterType()
        prefixes = random_legal_prefixes(
            counter, [CounterInc(1), CounterRead()], count=10, max_length=4,
            rng=random.Random(0),
        )
        assert () in prefixes
        for prefix in prefixes:
            assert counter.is_legal(prefix)


class TestGraphCorners:
    def test_empty_serialization_graph(self):
        from repro import SerializationGraph

        graph = SerializationGraph()
        assert graph.is_acyclic()
        assert graph.find_cycle() is None
        assert graph.nodes() == ()
        assert list(graph.edges()) == []
        order = graph.to_sibling_order()
        assert order.pairs() == set()

    def test_certify_behavior_with_only_informs(self):
        from repro import InformCommit, ObjectName
        from conftest import T, rw_system

        system = rw_system("x")
        behavior = (InformCommit(ObjectName("x"), T("t")),)
        certificate = certify(behavior, system)
        assert certificate.certified  # serial projection is empty
