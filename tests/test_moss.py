"""Unit tests for Moss' read/write locking object automaton M1_X."""

import pytest

from repro import (
    OK,
    Access,
    Create,
    InformAbort,
    InformCommit,
    MossRWLockingObject,
    ObjectName,
    ReadOp,
    RequestCommit,
    ROOT,
    RWSpec,
    SystemType,
    WriteOp,
)
from repro.locking.moss import least_write_lockholder, write_lockholders_form_chain
from repro.spec.builtin import CounterType

from conftest import T


X = ObjectName("x")


def setup(*accesses):
    """accesses: tuples (name, op).  Returns (system_type, automaton)."""
    system = SystemType({X: RWSpec(initial=0)})
    for name, operation in accesses:
        system.register_access(name, Access(X, operation))
    return system, MossRWLockingObject(X, system)


class TestBasics:
    def test_initial_state_root_holds_lock(self):
        _, obj = setup()
        state = obj.initial_state()
        assert state.write_lockholders == {ROOT}
        assert state.value(ROOT) == 0
        assert least_write_lockholder(state) == ROOT

    def test_requires_rw_spec(self):
        system = SystemType({X: CounterType()})
        with pytest.raises(TypeError):
            MossRWLockingObject(X, system)

    def test_read_before_create_not_enabled(self):
        reader = T("t", "r")
        _, obj = setup((reader, ReadOp()))
        state = obj.initial_state()
        assert not obj.enabled(state, RequestCommit(reader, 0))


class TestLockAcquisition:
    def test_read_returns_least_writer_value(self):
        reader = T("t", "r")
        _, obj = setup((reader, ReadOp()))
        state = obj.effect(obj.initial_state(), Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 0))
        state = obj.effect(state, RequestCommit(reader, 0))
        assert reader in state.read_lockholders

    def test_write_stores_value_and_takes_lock(self):
        writer = T("t", "w")
        _, obj = setup((writer, WriteOp(7)))
        state = obj.effect(obj.initial_state(), Create(writer))
        assert obj.enabled(state, RequestCommit(writer, OK))
        state = obj.effect(state, RequestCommit(writer, OK))
        assert writer in state.write_lockholders
        assert state.value(writer) == 7
        assert least_write_lockholder(state) == writer

    def test_conflicting_write_blocked_by_read_lock(self):
        reader, writer = T("t1", "r"), T("t2", "w")
        _, obj = setup((reader, ReadOp()), (writer, WriteOp(1)))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))
        state = obj.effect(state, Create(writer))
        # t1 holds a read lock and is no ancestor of t2
        assert not obj.enabled(state, RequestCommit(writer, OK))
        assert writer in set(obj.blocked_accesses(state))

    def test_concurrent_readers_allowed(self):
        r1, r2 = T("t1", "r"), T("t2", "r")
        _, obj = setup((r1, ReadOp()), (r2, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(r1))
        state = obj.effect(state, RequestCommit(r1, 0))
        state = obj.effect(state, Create(r2))
        assert obj.enabled(state, RequestCommit(r2, 0))

    def test_write_blocked_by_uncommitted_writer(self):
        w1, w2 = T("t1", "w"), T("t2", "w")
        _, obj = setup((w1, WriteOp(1)), (w2, WriteOp(2)))
        state = obj.initial_state()
        state = obj.effect(state, Create(w1))
        state = obj.effect(state, RequestCommit(w1, OK))
        state = obj.effect(state, Create(w2))
        assert not obj.enabled(state, RequestCommit(w2, OK))

    def test_descendant_sees_ancestors_uncommitted_write(self):
        # nested: t writes, then t's subtransaction reads t's value --
        # allowed because the write lockholder is an ancestor
        writer, reader = T("t", "w"), T("t", "u", "r")
        _, obj = setup((writer, WriteOp(9)), (reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        # lock moves up to t when the access commits
        state = obj.effect(state, InformCommit(X, writer))
        state = obj.effect(state, Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 9))
        assert not obj.enabled(state, RequestCommit(reader, 0))


class TestInformCommit:
    def test_lock_inheritance(self):
        writer = T("t", "w")
        _, obj = setup((writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, InformCommit(X, writer))
        assert writer not in state.write_lockholders
        assert T("t") in state.write_lockholders
        assert state.value(T("t")) == 5
        # and on upwards
        state = obj.effect(state, InformCommit(X, T("t")))
        assert state.write_lockholders == {ROOT}
        assert state.value(ROOT) == 5

    def test_read_lock_inheritance(self):
        reader = T("t", "r")
        _, obj = setup((reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))
        state = obj.effect(state, InformCommit(X, reader))
        assert reader not in state.read_lockholders
        assert T("t") in state.read_lockholders

    def test_inform_commit_for_non_holder_is_noop(self):
        _, obj = setup()
        state = obj.initial_state()
        after = obj.effect(state, InformCommit(X, T("stranger")))
        assert after == state


class TestInformAbort:
    def test_discards_descendant_locks_and_restores_value(self):
        writer = T("t", "w")
        _, obj = setup((writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        assert least_write_lockholder(state) == writer
        state = obj.effect(state, InformAbort(X, T("t")))
        # the write lock vanished; ROOT's original value is exposed again
        assert state.write_lockholders == {ROOT}
        assert state.value(ROOT) == 0
        assert least_write_lockholder(state) == ROOT

    def test_abort_of_unrelated_transaction_keeps_locks(self):
        writer = T("t", "w")
        _, obj = setup((writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, InformAbort(X, T("other")))
        assert writer in state.write_lockholders


class TestInvariants:
    def test_lemma9_chain_invariant_maintained(self):
        # write lockholders always form an ancestor chain
        w1, w2 = T("t", "w1"), T("t", "u", "w2")
        _, obj = setup((w1, WriteOp(1)), (w2, WriteOp(2)))
        state = obj.initial_state()
        assert write_lockholders_form_chain(state)
        state = obj.effect(state, Create(w1))
        state = obj.effect(state, RequestCommit(w1, OK))
        assert write_lockholders_form_chain(state)
        state = obj.effect(state, InformCommit(X, w1))
        state = obj.effect(state, InformCommit(X, T("t")))
        assert write_lockholders_form_chain(state)
        state = obj.effect(state, Create(w2))
        state = obj.effect(state, RequestCommit(w2, OK))
        assert write_lockholders_form_chain(state)

    def test_no_duplicate_response(self):
        reader = T("t", "r")
        _, obj = setup((reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))
        assert not obj.enabled(state, RequestCommit(reader, 0))

    def test_enabled_outputs_sound_and_valued(self):
        reader, writer = T("t1", "r"), T("t2", "w")
        _, obj = setup((reader, ReadOp()), (writer, WriteOp(3)))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, Create(writer))
        outputs = list(obj.enabled_outputs(state))
        for action in outputs:
            assert obj.enabled(state, action)
        assert RequestCommit(reader, 0) in outputs
