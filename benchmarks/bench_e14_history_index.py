"""E14 — shared history index: indexed vs naive batch certification.

Batch certification used to rebuild what it needed phase by phase:
every projection was a fresh full scan, ``conflict(beta)`` compared all
O(k²) access pairs per object, and visibility re-walked ancestor chains
per query.  The :class:`repro.core.history.HistoryIndex` materializes
all of it in one O(n) pass and ``certify(..., indexed=True)`` (the
default) threads that single index through every phase; the conflict
phase additionally skips read/read pairs entirely, so a read-heavy
history drops from O(k²) to O(k·w) specification consultations with
``w`` writers per object.

This benchmark certifies identical growing read-heavy histories with
``indexed=True`` and ``indexed=False`` (the preserved naive baseline),
asserts the verdicts agree, and writes ``BENCH_e14_history_index.json``
with the speedups and the ``history.index.*`` cost counters.  The
target: ≥5x at the largest size (n ≈ 5k events).
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    OK,
    Access,
    Commit,
    Create,
    MetricsRegistry,
    ObjectName,
    ReadOp,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    ROOT,
    RWSpec,
    SystemType,
    WriteOp,
    certify,
)

#: one write per this many accesses — the read-heavy regime the
#: writer-boundary enumeration is built for
WRITE_EVERY = 50


def read_heavy_history(top_level: int, accesses: int = 20, objects: int = 2):
    """``top_level`` sequential transactions, ``accesses`` accesses each.

    Accesses round-robin over ``objects`` hot read/write objects; every
    ``WRITE_EVERY``-th access (globally) is a write, the rest are reads
    returning the last committed value, so the behavior is serial,
    ARV-correct, and certifiable.  Event count is
    ``top_level * (5 * accesses + 5)``.
    """
    names = [ObjectName(f"X{i}") for i in range(objects)]
    system_type = SystemType({name: RWSpec(initial=0) for name in names})
    state = {name: 0 for name in names}
    actions = []
    sequence = 0
    for i in range(top_level):
        txn = ROOT.child(f"t{i}")
        actions += [RequestCreate(txn), Create(txn)]
        for a in range(accesses):
            obj = names[sequence % objects]
            if sequence % WRITE_EVERY == WRITE_EVERY - 1:
                op, value = WriteOp(sequence), OK
                state[obj] = sequence
            else:
                op, value = ReadOp(), state[obj]
            sequence += 1
            access = txn.child(f"a{a}")
            system_type.register_access(access, Access(obj, op))
            actions += [
                RequestCreate(access),
                Create(access),
                RequestCommit(access, value),
                Commit(access),
                ReportCommit(access, value),
            ]
        actions += [
            RequestCommit(txn, "done"),
            Commit(txn),
            ReportCommit(txn, "done"),
        ]
    return tuple(actions), system_type


def timed_certify(behavior, system_type, indexed: bool):
    registry = MetricsRegistry()
    start = time.perf_counter()
    certificate = certify(
        behavior,
        system_type,
        construct_witness=False,
        metrics=registry,
        indexed=indexed,
    )
    seconds = time.perf_counter() - start
    return certificate, seconds, registry.snapshot()["counters"]


CASES = pick([12, 24, 48], [2, 3])


def run_comparison():
    rows = []
    report = {}
    for top_level in CASES:
        behavior, system_type = read_heavy_history(top_level)
        indexed, idx_seconds, idx_counters = timed_certify(
            behavior, system_type, indexed=True
        )
        naive, naive_seconds, _ = timed_certify(
            behavior, system_type, indexed=False
        )
        assert indexed.certified == naive.certified
        assert indexed.certified  # serial + ARV-correct by construction
        assert (indexed.cycle is None) and (naive.cycle is None)
        speedup = naive_seconds / max(idx_seconds, 1e-9)
        label = f"top{top_level}"
        report[label] = {
            "events": len(behavior),
            "indexed_seconds": idx_seconds,
            "naive_seconds": naive_seconds,
            "speedup": speedup,
            "index_counters": {
                name: value
                for name, value in idx_counters.items()
                if name.startswith("history.index.")
            },
        }
        rows.append(
            (
                label,
                len(behavior),
                int(idx_counters["history.index.conflict.pairs_checked"]),
                int(idx_counters["history.index.conflict.pairs_skipped_read_runs"]),
                f"{idx_seconds * 1e3:.1f}",
                f"{naive_seconds * 1e3:.1f}",
                f"{speedup:.1f}x",
            )
        )
    write_bench_json("e14_history_index", report)
    return report, rows


@pytest.mark.benchmark(group="e14")
def test_e14_indexed_vs_naive_certification(benchmark):
    report, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E14: shared-history-index vs naive certification, read-heavy histories",
        ["case", "events", "pairs checked", "read-runs skipped", "indexed (ms)", "naive (ms)", "speedup"],
        rows,
    )
    largest = report[f"top{CASES[-1]}"]
    counters = largest["index_counters"]
    # the read-run skip must dominate on a read-heavy history
    assert (
        counters["history.index.conflict.pairs_skipped_read_runs"]
        > counters["history.index.conflict.pairs_checked"]
    )
    assert counters["history.index.builds"] == 1
    if not SMOKE:
        speedups = [report[f"top{t}"]["speedup"] for t in CASES]
        assert largest["events"] >= 5000
        assert speedups[-1] >= 5.0, speedups
        assert speedups[-1] > speedups[0], speedups
