"""Smoke-mode switch shared by the experiment benchmarks.

Setting ``BENCH_SMOKE=1`` shrinks every benchmark to a tiny sweep that
finishes in seconds and skips the statistical/performance assertions and
the ``BENCH_*.json`` artifacts — CI runs the suite this way (``make
bench-smoke``) purely to catch import errors, API drift, and workload
generators that stopped producing the shapes the benchmarks assume.
Unset (the default), benchmarks run their full sweeps and publish
results.
"""

from __future__ import annotations

import os

#: True when the benchmarks should run tiny correctness-only sweeps.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def pick(full, tiny):
    """``full`` normally, ``tiny`` under ``BENCH_SMOKE=1``."""
    return tiny if SMOKE else full
