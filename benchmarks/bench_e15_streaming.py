"""E15 — bounded-memory streaming certification: compaction on vs off.

The online certifier historically retained every tracked operation for
the life of the run — correct, but fatal for a long-lived audit stream.
``OnlineCertifier(compaction=True)`` folds the settled visible prefix
of each object into a compact summary (resume state + conflict
frontier) and evicts quiescent subtree records, so retained state
tracks the *live window* of the stream rather than its length.

This benchmark drives commit-as-you-go streams
(:func:`repro.stream.commit_as_you_go`) of growing length — up to
~100k events — through both engines, asserts the judgements are
identical, and records peak retained tracked operations and throughput
in ``BENCH_e15_streaming.json``.  The headline targets: the compacted
peak is bounded by the live window (and flat as the stream grows 7x)
while the uncompacted baseline's retention grows linearly with the
stream; a mid-size stream is also pushed through the
:class:`repro.stream.StreamService` feed API to price the asyncio
transport.
"""

import asyncio
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro import MetricsRegistry, OnlineCertifier
from repro.stream import StreamConfig, StreamWorkload, certify_stream, commit_as_you_go

#: sliding window of in-flight top-level transactions
WINDOW = 8
#: compaction sweep cadence (events between sweeps)
INTERVAL = 64
#: how often the feed loop samples ``live_tracked_ops`` for the peak
SAMPLE_EVERY = 8

#: stream lengths, in top-level transactions (24 events each)
CASES = pick([600, 2100, 4200], [30, 60])


def make_workload(top_level: int) -> StreamWorkload:
    return StreamWorkload(
        top_level=top_level, accesses=4, window=WINDOW, rotation=16, seed=42
    )


def judgement(verdict):
    return (verdict.certified, verdict.arv_violations, verdict.cycle is None)


def timed_feed(top_level: int, compaction: bool):
    """Feed one freshly generated stream; return (verdict, stats)."""
    system, actions = commit_as_you_go(make_workload(top_level))
    certifier = OnlineCertifier(
        system,
        compaction=compaction,
        compaction_interval=INTERVAL,
    )
    peak = 0
    events = 0
    start = time.perf_counter()
    for action in actions:
        certifier.feed(action)
        events += 1
        if events % SAMPLE_EVERY == 0:
            peak = max(peak, certifier.live_tracked_ops())
    seconds = time.perf_counter() - start
    peak = max(peak, certifier.live_tracked_ops())
    return certifier.verdict(), {
        "events": events,
        "seconds": seconds,
        "events_per_second": events / max(seconds, 1e-9),
        "peak_live_tracked_ops": peak,
        "compaction": certifier.compaction_stats(),
    }


def timed_service(top_level: int, sessions: int = 2, workers: int = 2):
    """Price the asyncio feed transport on identical streams.

    A service-level registry rides along, so the report also carries the
    client-visible feed→verdict latency quantiles (queue wait plus
    certification, in seconds) next to the raw throughput.
    """
    registry = MetricsRegistry()

    async def drive():
        config = StreamConfig(
            workers=workers, compaction=True, compaction_interval=INTERVAL
        )

        async def one(index: int):
            workload = StreamWorkload(
                top_level=top_level,
                accesses=4,
                window=WINDOW,
                rotation=16,
                seed=42 + index,
            )
            system, actions = commit_as_you_go(workload)
            return await certify_stream(
                f"bench-{index}", system, actions, config, metrics=registry
            )

        return await asyncio.gather(*(one(index) for index in range(sessions)))

    start = time.perf_counter()
    results = asyncio.run(drive())
    seconds = time.perf_counter() - start
    events = sum(result.actions for result in results)
    latency = registry.histogram("stream.latency.feed_to_verdict")
    return {
        "sessions": sessions,
        "workers": workers,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / max(seconds, 1e-9),
        "latency": {
            "count": latency.count,
            "p50": latency.quantile(0.50),
            "p95": latency.quantile(0.95),
            "p99": latency.quantile(0.99),
        },
    }


def run_comparison():
    rows = []
    report = {}
    for top_level in CASES:
        compacted_verdict, compacted = timed_feed(top_level, compaction=True)
        baseline_verdict, baseline = timed_feed(top_level, compaction=False)
        assert judgement(compacted_verdict) == judgement(baseline_verdict)
        label = f"top{top_level}"
        report[label] = {
            "events": compacted["events"],
            "compacted": compacted,
            "baseline": baseline,
        }
        rows.append(
            (
                label,
                compacted["events"],
                compacted["peak_live_tracked_ops"],
                baseline["peak_live_tracked_ops"],
                f"{compacted['seconds']:.2f}",
                f"{baseline['seconds']:.2f}",
                f"{compacted['events_per_second'] / 1e3:.1f}k",
            )
        )
    report["service"] = timed_service(CASES[len(CASES) // 2])
    write_bench_json("e15_streaming", report)
    return report, rows


@pytest.mark.benchmark(group="e15")
def test_e15_streaming_compaction(benchmark):
    report, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E15: commit-as-you-go streams, compacted vs uncompacted retention",
        [
            "case",
            "events",
            "peak ops (compacted)",
            "peak ops (baseline)",
            "compacted (s)",
            "baseline (s)",
            "throughput",
        ],
        rows,
    )
    first = report[f"top{CASES[0]}"]
    largest = report[f"top{CASES[-1]}"]
    # retention bounded by the live window, independent of stream length
    assert largest["compacted"]["peak_live_tracked_ops"] <= 40 * WINDOW
    assert (
        largest["compacted"]["peak_live_tracked_ops"]
        <= first["compacted"]["peak_live_tracked_ops"] + 8
    )
    assert largest["compacted"]["compaction"]["evicted_rows"] > 0
    # the service section reports feed→verdict latency quantiles
    latency = report["service"]["latency"]
    assert latency["count"] == report["service"]["events"]
    assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
    # the baseline's retention grows with the stream
    assert (
        largest["baseline"]["peak_live_tracked_ops"]
        > largest["compacted"]["peak_live_tracked_ops"]
    )
    if not SMOKE:
        assert largest["events"] >= 100_000
        assert (
            largest["baseline"]["peak_live_tracked_ops"]
            >= 5 * first["baseline"]["peak_live_tracked_ops"]
        )
