"""E6 — checker cost: serialization-graph construction scaling.

Measures SG construction + acyclicity checking over increasingly long
behaviors (generated once, outside the timed region).  Expected shape:
cost grows smoothly with behavior length; the per-object quadratic
conflict enumeration dominates only under heavy same-object contention.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import instrumented_run, phase_totals, write_bench_json
from _smoke import pick
from _tables import print_table

from repro import (
    EagerInformPolicy,
    MetricsRegistry,
    MossRWLockingObject,
    WorkloadConfig,
    build_serialization_graph,
    certify_corpus,
    generate_workload,
    make_generic_system,
    run_system,
    serial_projection,
    simulate_corpus,
)


def make_behavior(top_level: int, objects: int, seed: int = 0):
    config = WorkloadConfig(
        seed=seed, top_level=top_level, objects=objects, max_depth=2, max_calls=3
    )
    system_type, programs = generate_workload(config)
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    result = run_system(
        system,
        EagerInformPolicy(seed=seed),
        system_type,
        max_steps=60_000,
        resolve_deadlocks=True,
    )
    return serial_projection(result.behavior), system_type


CASES = pick(
    [(8, 4), (16, 8), (32, 8), (64, 16), (128, 16), (256, 32)],
    [(8, 4), (16, 8)],
)


@pytest.fixture(scope="module")
def behaviors():
    return {case: make_behavior(*case) for case in CASES}


@pytest.mark.benchmark(group="e6")
@pytest.mark.parametrize("case", CASES, ids=[f"top{t}_obj{o}" for t, o in CASES])
def test_e6_sg_construction_scaling(benchmark, behaviors, case):
    serial, system_type = behaviors[case]

    def build():
        graph = build_serialization_graph(serial, system_type)
        return graph.is_acyclic()

    acyclic = benchmark(build)
    assert acyclic
    print_table(
        f"E6: SG construction over {len(serial)} serial events "
        f"(top={case[0]}, objects={case[1]})",
        ["events", "accesses", "objects"],
        [(len(serial), len(system_type.all_accesses()), case[1])],
    )


@pytest.mark.benchmark(group="e6")
def test_e6_phase_breakdown(benchmark, behaviors):
    """One traced build per case: where SG construction time actually goes.

    Writes ``BENCH_e6_phases.json`` with per-case phase timings (seed
    nodes / conflict enumeration / precedes enumeration) so regressions
    can be localised to a phase, not just seen in the total.
    """

    def breakdown():
        report = {}
        rows = []
        for case, (serial, system_type) in behaviors.items():
            _, registry, spans = instrumented_run(
                lambda tracer, metrics: build_serialization_graph(
                    serial, system_type, tracer=tracer, metrics=metrics
                )
            )
            phases = phase_totals(spans, prefix="sg.")
            snapshot = registry.snapshot()
            label = f"top{case[0]}_obj{case[1]}"
            report[label] = {
                "events": len(serial),
                "phases_seconds": phases,
                "gauges": snapshot["gauges"],
            }
            rows.append(
                (
                    label,
                    len(serial),
                    f"{phases.get('sg.conflict_pairs', 0.0) * 1e3:.2f}",
                    f"{phases.get('sg.precedes_pairs', 0.0) * 1e3:.2f}",
                    int(snapshot["gauges"].get("sg.edges", 0)),
                )
            )
        return report, rows

    report, rows = benchmark.pedantic(breakdown, rounds=1, iterations=1)
    path = write_bench_json("e6_phases", report)
    print_table(
        f"E6: per-phase SG construction timings (written to {path.name})",
        ["case", "events", "conflict (ms)", "precedes (ms)", "edges"],
        rows,
    )


@pytest.mark.benchmark(group="e6")
def test_e6_sharded_corpus_certification(benchmark):
    """Sharded batch certification of a recorded corpus (the --jobs path).

    Certifies the same 12-case corpus at several shard fan-outs and
    asserts the verdicts are identical; writes
    ``BENCH_e6_parallel.json`` with per-fan-out wall time and the
    ``parallel.*`` counters.  Wall-clock speedup depends on the host's
    core count (this is a correctness + methodology benchmark; see
    docs/PERFORMANCE.md for how to read the numbers).
    """
    corpus = simulate_corpus(range(pick(12, 3)), top_level=8, objects=4, jobs=1)
    cases = [
        (f"seed-{seed}", behavior, system_type)
        for seed, (behavior, system_type) in enumerate(corpus)
    ]

    def certify_at_fanouts():
        report = {}
        rows = []
        baseline = None
        for jobs in (1, 2, 4):
            registry = MetricsRegistry()
            start = time.perf_counter()
            verdicts = certify_corpus(cases, jobs=jobs, metrics=registry)
            seconds = time.perf_counter() - start
            if baseline is None:
                baseline = verdicts
            assert verdicts == baseline  # fan-out never changes a verdict
            snapshot = registry.snapshot()
            report[f"jobs{jobs}"] = {
                "cases": len(verdicts),
                "certified": sum(1 for v in verdicts if v.certified),
                "seconds": seconds,
                "gauges": snapshot["gauges"],
                "counters": snapshot["counters"],
            }
            rows.append(
                (
                    jobs,
                    int(snapshot["gauges"].get("parallel.shards", 0)),
                    len(verdicts),
                    f"{seconds * 1e3:.1f}",
                )
            )
        return report, rows

    report, rows = benchmark.pedantic(certify_at_fanouts, rounds=1, iterations=1)
    path = write_bench_json("e6_parallel", report)
    print_table(
        f"E6: sharded corpus certification (written to {path.name})",
        ["jobs", "shards", "cases", "wall (ms)"],
        rows,
    )
