"""Observability helpers shared by the experiment benchmarks.

The benchmarks time whole operations with ``pytest-benchmark``; these
helpers add the *phase-level* view: run the operation once under a
:class:`repro.obs.Tracer`, aggregate per-phase span totals, and write a
``BENCH_<name>.json`` next to the benchmark files so results carry the
breakdown (not just totals) for regression comparison across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterable, Tuple

from _smoke import SMOKE
from repro.obs import MetricsRegistry, RingBufferSink, Span, Tracer

BENCH_DIR = Path(__file__).parent


def instrumented_run(
    fn: Callable[[Tracer, MetricsRegistry], object],
) -> Tuple[object, MetricsRegistry, Tuple[Span, ...]]:
    """Run ``fn(tracer, metrics)`` once under a fresh ring-buffer tracer."""
    registry = MetricsRegistry()
    ring = RingBufferSink()
    tracer = Tracer(ring, metrics=registry)
    result = fn(tracer, registry)
    return result, registry, ring.spans()


def phase_totals(spans: Iterable[Span], prefix: str = "") -> Dict[str, float]:
    """Total seconds per span name (optionally filtered by name prefix)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if span.name.startswith(prefix):
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return totals


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` beside the benchmarks; return the path.

    Under ``BENCH_SMOKE=1`` the write is skipped — smoke sweeps are too
    tiny to be worth publishing as regression baselines.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    if not SMOKE:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
