"""E8 — recovery under abort storms.

Sweeps the per-step abort-injection rate from 0 to 0.8 for both
algorithms and checks that (a) every run remains serially correct, and
(b) recovery actually erases aborted work: replaying only the visible
operations at each object yields a legal serial behavior — the books
always balance.  Expected shape: zero violations at every abort rate,
with committed work decreasing as the rate rises.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    AbortInjector,
    CounterKind,
    MossRWLockingObject,
    RandomPolicy,
    UndoLoggingObject,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)

RATES = pick([0.0, 0.1, 0.3, 0.5, 0.8], [0.0, 0.5])
SEEDS = pick(range(3), range(1))


def run_sweep():
    rows = []
    for label, factory, kind in [
        ("moss/rw", MossRWLockingObject, None),
        ("undo/counter", UndoLoggingObject, CounterKind()),
    ]:
        for rate in RATES:
            violations = committed = aborted = 0
            for seed in SEEDS:
                config_kw = dict(seed=seed, top_level=6, objects=3, max_depth=2)
                if kind is not None:
                    config_kw["kind"] = kind
                system_type, programs = generate_workload(
                    WorkloadConfig(**config_kw)
                )
                system = make_generic_system(system_type, programs, factory)
                policy = AbortInjector(RandomPolicy(seed), abort_rate=rate, seed=seed)
                result = run_system(
                    system, policy, system_type, max_steps=10_000,
                    resolve_deadlocks=True,
                )
                certificate = certify(result.behavior, system_type)
                ok = certificate.certified and not certificate.witness_problems
                if not ok:
                    violations += 1
                committed += result.stats.top_level_committed
                aborted += result.stats.aborted
            rows.append((label, rate, len(SEEDS), committed, aborted, violations))
    return rows


@pytest.mark.benchmark(group="e8")
def test_e8_recovery_abort_storm(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E8: recovery under abort storms (certified = ARV + acyclic SG + witness)",
        ["algorithm", "abort rate", "runs", "committed", "aborted", "violations"],
        rows,
    )
    assert all(row[-1] == 0 for row in rows)
    if not SMOKE:
        for label in ("moss/rw", "undo/counter"):
            series = [row for row in rows if row[0] == label]
            assert series[0][3] >= series[-1][3], (
                "committed work should not grow with aborts"
            )
