"""E11 — streaming audit: incremental vs batch certification cost.

A monitoring deployment re-judges the system after every event.  Doing
that by re-running the batch certifier costs O(n) per event (O(n²)
total); the online certifier maintains the verdict incrementally.
Expected shape: the online certifier processes a whole stream in time
comparable to ONE batch run, and the per-event advantage grows with
stream length.  Verdict equality is asserted as we go.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    EagerInformPolicy,
    MetricsRegistry,
    MossRWLockingObject,
    OnlineCertifier,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)


def make_stream(top_level: int, objects: int, seed: int = 0):
    system_type, programs = generate_workload(
        WorkloadConfig(seed=seed, top_level=top_level, objects=objects, max_depth=2)
    )
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    result = run_system(
        system,
        EagerInformPolicy(seed=seed),
        system_type,
        max_steps=60_000,
        resolve_deadlocks=True,
    )
    return result.behavior, system_type


def run_comparison():
    rows = []
    cost_report = {}
    for top_level, objects in pick(
        [(8, 4), (16, 8), (32, 8), (64, 16)], [(8, 4)]
    ):
        behavior, system_type = make_stream(top_level, objects)
        # metrics-only instrumentation: counts the online certifier's
        # cost drivers (insertions, suffix re-evaluations, edges) without
        # span overhead in the timed loop
        registry = MetricsRegistry()
        start = time.perf_counter()
        certifier = OnlineCertifier(system_type, metrics=registry)
        for action in behavior:
            certifier.feed(action)
        online_seconds = time.perf_counter() - start
        online_verdict = certifier.verdict()
        cost_report[f"top{top_level}_obj{objects}"] = {
            "events": len(behavior),
            "online_seconds": online_seconds,
            "counters": registry.snapshot()["counters"],
        }

        start = time.perf_counter()
        batch = certify(behavior, system_type, construct_witness=False)
        one_batch_seconds = time.perf_counter() - start
        assert online_verdict.certified == batch.certified

        # per-event batch re-run, sampled every 16 events and extrapolated
        start = time.perf_counter()
        samples = 0
        for cut in range(1, len(behavior) + 1, 16):
            certify(behavior[:cut], system_type, construct_witness=False)
            samples += 1
        sampled = time.perf_counter() - start
        per_event_batch_estimate = sampled * (len(behavior) / max(samples, 1))
        rows.append(
            (
                len(behavior),
                f"{online_seconds * 1e3:.1f}",
                f"{one_batch_seconds * 1e3:.1f}",
                f"{per_event_batch_estimate * 1e3:.0f}",
                f"{per_event_batch_estimate / max(online_seconds, 1e-9):.0f}x",
            )
        )
    write_bench_json("e11_online_cost", cost_report)
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_online_vs_batch(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E11: streaming audit — online certifier vs per-event batch re-runs",
        [
            "events",
            "online full stream (ms)",
            "single batch (ms)",
            "batch per event, est. (ms)",
            "speedup",
        ],
        rows,
    )
    if not SMOKE:
        # the online stream should beat re-running batch per event handily
        assert all(float(row[4].rstrip("x")) > 2 for row in rows)
