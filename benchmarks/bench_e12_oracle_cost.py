"""E12 — why the graph test matters: polynomial check vs exponential search.

The serialization-graph condition can be checked in (low) polynomial
time; deciding serial correctness directly means searching over sibling
orders, whose count is a product of factorials.  This bench makes the
tractability gap concrete by certifying the *same* behaviors both ways
while scaling the number of concurrent top-level transactions.

Expected shape: certify() stays in the low milliseconds while the
oracle's order count (and time) explodes factorially — the practical
content of having a Theorem 8 at all.
"""

import math
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    oracle_serially_correct,
    run_system,
)


def make_behavior(top_level: int, seed: int = 1):
    system_type, programs = generate_workload(
        WorkloadConfig(
            seed=seed, top_level=top_level, objects=2, max_depth=1, max_calls=2
        )
    )
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    result = run_system(
        system,
        EagerInformPolicy(seed=seed),
        system_type,
        max_steps=10_000,
        resolve_deadlocks=True,
    )
    return result.behavior, system_type


def run_comparison():
    rows = []
    for top_level in pick((2, 3, 4, 5, 6), (2, 3)):
        behavior, system_type = make_behavior(top_level)

        start = time.perf_counter()
        certificate = certify(behavior, system_type, construct_witness=False)
        graph_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        verdict = oracle_serially_correct(behavior, system_type, max_orders=250_000)
        oracle_ms = (time.perf_counter() - start) * 1e3

        assert certificate.certified and bool(verdict)
        rows.append(
            (
                top_level,
                f"{graph_ms:.2f}",
                verdict.orders_tried,
                f"{oracle_ms:.2f}",
                f"{oracle_ms / max(graph_ms, 1e-9):.1f}x",
            )
        )
    return rows


@pytest.mark.benchmark(group="e12")
def test_e12_graph_test_vs_oracle_search(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E12: Theorem 8 check vs direct witness search (same certified behaviors)",
        ["top-level txns", "SG test (ms)", "orders tried", "oracle (ms)", "ratio"],
        rows,
    )
    # the oracle workload grows with the factorial structure; the graph
    # test must stay flat.  Note: the oracle stops at the FIRST witness,
    # so 'orders tried' understates the worst case (a rejection would
    # enumerate everything).
    if not SMOKE:
        assert float(rows[-1][1]) < 50.0
