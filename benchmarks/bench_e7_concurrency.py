"""E7 — type-specific concurrency: undo logging vs Moss RW locking.

The Section 6 motivation quantified: N clients increment one hotspot
counter.  Under read/write locking each increment is a read-modify-write
and the clients serialise (and deadlock, requiring victim aborts); under
undo logging increments commute backward and all proceed.  Expected
shape: undo logging commits every client with no deadlock victims and
far less blocking; locking loses clients to deadlock as N grows.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    ReadUpdateLockingObject,
    RWSpec,
    UndoLoggingObject,
    certify,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.programs import (
    TransactionProgram,
    op,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from repro.spec.builtin import CounterInc, CounterType

HOT = ObjectName("hot")


def locking_workload(clients: int):
    programs = {
        ROOT: TransactionProgram(
            tuple(
                sub(seq(read(HOT, "r"), write(HOT, i + 1, "w")), f"c{i}")
                for i in range(clients)
            ),
            sequential=False,
        )
    }
    system_type = system_type_for({HOT: RWSpec(initial=0)}, programs)
    return system_type, programs, MossRWLockingObject


def typed_workload(factory):
    def setup(clients: int):
        programs = {
            ROOT: TransactionProgram(
                tuple(
                    sub(seq(op(HOT, CounterInc(1), "inc")), f"c{i}")
                    for i in range(clients)
                ),
                sequential=False,
            )
        }
        system_type = system_type_for({HOT: CounterType(initial=0)}, programs)
        return system_type, programs, factory

    return setup


undo_workload = typed_workload(UndoLoggingObject)
read_update_workload = typed_workload(ReadUpdateLockingObject)


def run_one(setup, clients, seed=3):
    system_type, programs, factory = setup(clients)
    system = make_generic_system(system_type, programs, factory)
    result = run_system(
        system,
        EagerInformPolicy(seed=seed),
        system_type,
        max_steps=40_000,
        collect_blocking=True,
        resolve_deadlocks=True,
    )
    certificate = certify(result.behavior, system_type, construct_witness=False)
    assert certificate.certified
    return result.stats


def run_sweep():
    rows = []
    for clients in pick((2, 4, 8, 16), (2, 4)):
        lock = run_one(locking_workload, clients)
        read_update = run_one(read_update_workload, clients)
        undo = run_one(undo_workload, clients)
        rows.append(
            (
                clients,
                lock.top_level_committed,
                lock.deadlock_aborts,
                lock.blocked_access_steps,
                read_update.top_level_committed,
                read_update.blocked_access_steps,
                undo.top_level_committed,
                undo.deadlock_aborts,
                undo.blocked_access_steps,
            )
        )
    return rows


@pytest.mark.benchmark(group="e7")
def test_e7_commutativity_concurrency(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E7: hotspot counter — RW locking vs read/update locking vs undo logging",
        [
            "clients",
            "rw committed", "rw victims", "rw blocked",
            "r/u committed", "r/u blocked",
            "undo committed", "undo victims", "undo blocked",
        ],
        rows,
    )
    for clients, lc, lv, lb, rc, rb, uc, uv, ub in rows:
        assert uc == clients, "undo logging must commit every client"
        assert uv == 0, "commuting increments never deadlock"
        assert ub <= rb <= lb, (
            "admitted concurrency must order: undo >= read/update >= RW locking"
        )
        # read/update locking: single exclusive lock per increment, no
        # read-lock coupling, so no deadlock — all clients commit
        assert rc == clients
    if not SMOKE:
        # RW locking must lose clients to deadlock once contention is real
        assert any(row[2] > 0 for row in rows)
