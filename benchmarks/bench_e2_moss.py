"""E2 — Theorem 17: Moss locking behaviors are serially correct.

Sweeps workload size, nesting depth and abort rate; every produced
behavior must be certified by the serialization-graph test.  Expected
shape: zero violations anywhere in the sweep.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import pick
from _tables import print_table

from repro import (
    AbortInjector,
    MossRWLockingObject,
    RandomPolicy,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)

SWEEP = pick(
    [
        # (top_level, objects, depth, abort_rate)
        (4, 2, 1, 0.0),
        (8, 4, 2, 0.0),
        (8, 4, 2, 0.1),
        (8, 4, 2, 0.3),
        (16, 8, 2, 0.1),
        (16, 8, 3, 0.3),
    ],
    [(4, 2, 1, 0.0), (8, 4, 2, 0.1)],
)
SEEDS = pick(range(4), range(1))


def run_sweep():
    rows = []
    for top_level, objects, depth, abort_rate in SWEEP:
        violations = 0
        committed = aborted = steps = 0
        for seed in SEEDS:
            config = WorkloadConfig(
                seed=seed, top_level=top_level, objects=objects, max_depth=depth
            )
            system_type, programs = generate_workload(config)
            system = make_generic_system(system_type, programs, MossRWLockingObject)
            policy = AbortInjector(
                RandomPolicy(seed), abort_rate=abort_rate, seed=seed
            )
            result = run_system(
                system, policy, system_type, max_steps=12_000,
                resolve_deadlocks=True,
            )
            certificate = certify(result.behavior, system_type)
            if not (certificate.certified and not certificate.witness_problems):
                violations += 1
            committed += result.stats.top_level_committed
            aborted += result.stats.aborted
            steps += result.stats.steps
        rows.append(
            (
                top_level,
                objects,
                depth,
                abort_rate,
                len(SEEDS),
                committed,
                aborted,
                steps,
                violations,
            )
        )
    return rows


@pytest.mark.benchmark(group="e2")
def test_e2_moss_theorem17(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E2: Theorem 17 — Moss locking, all runs serially correct",
        [
            "top", "objs", "depth", "abort%", "runs",
            "committed", "aborts", "steps", "violations",
        ],
        rows,
    )
    assert all(row[-1] == 0 for row in rows)
