"""E9 — ablations of the construction's design choices.

(a) **Drop the precedes edges.**  The paper adds them for external
consistency: an order sorted from the conflict-only graph can reverse
sequentially-issued siblings.  We measure how often, on workloads with
a sequential root, a conflict-only topological order fails the
Serializability Theorem hypotheses (it must *sometimes* fail, while the
full-graph order never does).

(b) **Inform delivery order.**  Moss' lock inheritance wants informs in
leaf-to-root order; the controller may deliver them arbitrarily.  We
compare eager vs random delivery: correctness must hold either way (the
theorems don't assume an order), while random delivery costs blocking.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    ROOT,
    EagerInformPolicy,
    MossRWLockingObject,
    RandomPolicy,
    SerializationGraph,
    TransactionProgram,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
    serial_projection,
    serializability_theorem_applies,
)
from repro.core.events import StatusIndex
from repro.core.serialization_graph import conflict_pairs, precedes_pairs


def sequential_workload(seed: int):
    system_type, programs = generate_workload(
        WorkloadConfig(seed=seed, top_level=4, objects=2, max_calls=2,
                       sequential_probability=1.0)
    )
    root = programs[ROOT]
    programs = {ROOT: TransactionProgram(root.calls, sequential=True)}
    return system_type, programs


def build_order(serial, system_type, include_precedes: bool):
    index = StatusIndex(serial)
    graph = SerializationGraph()
    for transaction in index.create_requested:
        if index.is_visible(transaction.parent, ROOT):
            graph.add_node(transaction)
    for edge in conflict_pairs(serial, system_type, index):
        graph.add_edge(edge)
    if include_precedes:
        for edge in precedes_pairs(serial, index):
            graph.add_edge(edge)
    if not graph.is_acyclic():
        return None
    return graph.to_sibling_order()


def ablation_precedes(seeds):
    full_fail = stripped_fail = total = 0
    for seed in seeds:
        system_type, programs = sequential_workload(seed)
        system = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            system, EagerInformPolicy(seed=seed), system_type,
            max_steps=6000, resolve_deadlocks=True,
        )
        serial = serial_projection(result.behavior)
        total += 1
        full = build_order(serial, system_type, include_precedes=True)
        assert full is not None
        if serializability_theorem_applies(serial, ROOT, full, system_type):
            full_fail += 1
        stripped = build_order(serial, system_type, include_precedes=False)
        if stripped is None or serializability_theorem_applies(
            serial, ROOT, stripped, system_type
        ):
            stripped_fail += 1
    return total, full_fail, stripped_fail


def ablation_informs(seeds):
    rows = []
    for label, make_policy in [
        ("eager informs", lambda seed: EagerInformPolicy(seed=seed)),
        ("random informs", lambda seed: RandomPolicy(seed)),
    ]:
        committed = blocked = violations = 0
        for seed in seeds:
            system_type, programs = generate_workload(
                WorkloadConfig(seed=seed, top_level=6, objects=3, max_depth=2)
            )
            system = make_generic_system(system_type, programs, MossRWLockingObject)
            result = run_system(
                system, make_policy(seed), system_type, max_steps=8000,
                collect_blocking=True, resolve_deadlocks=True,
            )
            certificate = certify(result.behavior, system_type,
                                  construct_witness=False)
            if not certificate.certified:
                violations += 1
            committed += result.stats.top_level_committed
            blocked += result.stats.blocked_access_steps
        rows.append((label, len(list(seeds)), committed, blocked, violations))
    return rows


@pytest.mark.benchmark(group="e9")
def test_e9a_precedes_edges_matter(benchmark):
    total, full_fail, stripped_fail = benchmark.pedantic(
        ablation_precedes, args=(range(pick(12, 4)),), rounds=1, iterations=1
    )
    print_table(
        "E9a: sequential workloads — does the derived order satisfy Theorem 2?",
        ["graph", "runs", "order fails"],
        [
            ("conflict + precedes (paper)", total, full_fail),
            ("conflict only (ablated)", total, stripped_fail),
        ],
    )
    assert full_fail == 0, "the paper's graph must always yield a good order"
    if not SMOKE:  # needs the full seed sweep to observe a broken order
        assert stripped_fail > 0, "dropping precedes edges should break some orders"


@pytest.mark.benchmark(group="e9")
def test_e9b_inform_delivery_order(benchmark):
    rows = benchmark.pedantic(
        ablation_informs, args=(range(pick(5, 2)),), rounds=1, iterations=1
    )
    print_table(
        "E9b: Moss locking under eager vs arbitrary inform delivery",
        ["policy", "runs", "committed", "blocked steps", "violations"],
        rows,
    )
    assert all(row[-1] == 0 for row in rows), "correctness must not depend on informs"
