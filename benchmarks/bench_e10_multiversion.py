"""E10 — the multiversion boundary of the serialization-graph technique.

The paper (Section 1, Section 7) argues that its user-view correctness
definition covers multiversion algorithms while graph techniques built
on single-version conflict order do not.  We run the MVTO extension
(`repro.extensions.mvto`) and measure how the Theorem 8 test fares on
its behaviors, with the brute-force oracle as ground truth.

Expected shape: every run is serially correct (oracle), the SG test
never accepts an incorrect behavior, and a *nonzero* fraction of the
correct behaviors is rejected — the stale-read phenomenon that
motivated the multiversion extensions of the theory ([1] in the paper).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    RandomPolicy,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    oracle_serially_correct,
    run_system,
)
from repro.extensions.mvto import MVTORWObject


def run_sweep(samples: int):
    certified = rejected_correct = rejected_incorrect = oracle_giveups = 0
    for seed in range(samples):
        system_type, programs = generate_workload(
            WorkloadConfig(
                seed=seed, top_level=3, objects=2, max_depth=1, max_calls=2
            )
        )
        system = make_generic_system(system_type, programs, MVTORWObject)
        result = run_system(
            system,
            RandomPolicy(seed),
            system_type,
            max_steps=4000,
            resolve_deadlocks=True,
        )
        certificate = certify(result.behavior, system_type,
                              construct_witness=False)
        if certificate.certified:
            certified += 1
            continue
        verdict = oracle_serially_correct(
            result.behavior, system_type, max_orders=3000
        )
        if verdict:
            rejected_correct += 1
        elif verdict.truncated:
            oracle_giveups += 1
        else:
            rejected_incorrect += 1
    return certified, rejected_correct, rejected_incorrect, oracle_giveups


@pytest.mark.benchmark(group="e10")
def test_e10_multiversion_boundary(benchmark):
    samples = pick(60, 8)
    certified, rejected_correct, rejected_incorrect, giveups = benchmark.pedantic(
        run_sweep, args=(samples,), rounds=1, iterations=1
    )
    print_table(
        "E10: MVTO behaviors vs the (single-version) SG test",
        ["verdict", "count", "fraction"],
        [
            ("certified by SG test", certified, f"{certified / samples:.2f}"),
            (
                "correct but rejected (multiversion gap)",
                rejected_correct,
                f"{rejected_correct / samples:.2f}",
            ),
            (
                "rejected and genuinely incorrect",
                rejected_incorrect,
                f"{rejected_incorrect / samples:.2f}",
            ),
            ("oracle budget exhausted", giveups, f"{giveups / samples:.2f}"),
        ],
    )
    assert rejected_incorrect == 0, "MVTO produced an incorrect behavior"
    if not SMOKE:  # the gap is statistical; it needs the full sample size
        assert rejected_correct > 0, "expected the multiversion gap to appear"
        assert certified > 0
