"""E5 — the nested construction generalises the classical theory.

On depth-1 (flat) behaviors, the top-level conflict edges of the nested
serialization graph must coincide exactly with the classical conflict
graph, and cyclicity must agree; strict-2PL histories must always be
certified.  Expected shape: 100% agreement.
"""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import pick
from _tables import print_table

from repro import (
    ROOT,
    Digraph,
    build_serialization_graph,
    certify,
    classical_edges,
    history_to_nested_behavior,
    is_conflict_serializable,
    run_strict_2pl,
)
from repro.classical.histories import random_history
from repro.classical.two_phase_locking import FlatScript


def top_level_conflict_graph(behavior, system_type):
    graph = build_serialization_graph(behavior, system_type)
    digraph = Digraph()
    edges = set()
    for edge in graph.edges():
        if edge.kind == "conflict" and edge.parent == ROOT:
            digraph.add_edge(edge.source, edge.target)
            edges.add((edge.source.path[0], edge.target.path[0]))
    return edges, digraph


HISTORIES = pick(25, 3)


def run_sweep():
    rows = []
    # random (possibly non-serializable) histories: edge + cyclicity agreement
    for txns, objs, ops in [(3, 2, 3), (4, 2, 3), (5, 3, 4)]:
        edge_agree = cycle_agree = total = 0
        for seed in range(HISTORIES):
            history = random_history(
                txns, objs, ops, seed=seed, write_probability=0.6
            )
            behavior, system_type = history_to_nested_behavior(history)
            edges, digraph = top_level_conflict_graph(behavior, system_type)
            total += 1
            if edges == classical_edges(history):
                edge_agree += 1
            if digraph.is_acyclic() == is_conflict_serializable(history):
                cycle_agree += 1
        rows.append((f"random {txns}x{ops}", total, edge_agree, cycle_agree, "-"))
    # 2PL output: always serializable, must always be certified
    for txns, objs, ops in [(4, 3, 3), (6, 3, 4)]:
        certified = total = 0
        rng = random.Random(0)
        for seed in range(HISTORIES):
            scripts = [
                FlatScript.random(f"T{i}", objects=objs, length=ops, rng=rng)
                for i in range(txns)
            ]
            history, _ = run_strict_2pl(scripts, seed=seed)
            behavior, system_type = history_to_nested_behavior(history)
            total += 1
            if certify(behavior, system_type, construct_witness=False).certified:
                certified += 1
        rows.append((f"2PL {txns}x{ops}", total, "-", "-", certified))
    return rows


@pytest.mark.benchmark(group="e5")
def test_e5_classical_agreement(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E5: agreement with the classical theory on flat histories",
        ["workload", "histories", "edges agree", "cycles agree", "2PL certified"],
        rows,
    )
    for row in rows:
        if row[2] != "-":
            assert row[2] == row[1] and row[3] == row[1]
        if row[4] != "-":
            assert row[4] == row[1]
