"""E17 — columnar engine: dense-int struct-of-arrays vs the history index.

The PR 3 history index (E14) removed the repeated full scans, but the
representation it walks is still one Python object per event: conflict
enumeration hashes ``TransactionName`` tuples, visibility chases
attribute chains, and every phase pays dict lookups keyed by structured
values.  ``repro.core.columnar`` changes the representation — names,
objects and operation classes intern to dense ints at append time, the
history is parallel ``array('q')`` columns, visibility/orphan sets are
bitsets, and read/write objects resolve their whole conflict relation
in one linear bitset sweep (``conflicts_iff_writer``) instead of a pair
loop.

This benchmark certifies identical growing read-heavy histories with
``certify(indexed=True)`` (the PR 3 lane) and ``certify_columnar`` fed
by a *lazy generator* — the 50k+ event corpus is never materialized as
an object list for the columnar lane — asserts the verdicts agree, and
writes ``BENCH_e17_columnar.json``.  The acceptance bar, checked here
in full mode and re-checked against the committed baseline in CI:
≥10x over the indexed path at ≥50,000 events.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    OK,
    Access,
    Commit,
    Create,
    MetricsRegistry,
    ObjectName,
    ReadOp,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    ROOT,
    RWSpec,
    SystemType,
    WriteOp,
    certify,
)
from repro.core.columnar import certify_columnar

#: one write per this many accesses — the read-heavy regime both the
#: writer-boundary skip (indexed) and the bitset sweep (columnar) target
WRITE_EVERY = 50


def read_heavy_system(objects: int = 2) -> SystemType:
    names = [ObjectName(f"X{i}") for i in range(objects)]
    return SystemType({name: RWSpec(initial=0) for name in names})


def stream_read_heavy_history(
    system_type: SystemType, top_level: int, accesses: int = 20
):
    """Lazily yield the E14 read-heavy history, one action at a time.

    ``top_level`` sequential transactions of ``accesses`` accesses each,
    round-robin over the system's objects, one write per ``WRITE_EVERY``
    accesses globally — serial, ARV-correct, certifiable.  Event count
    is ``top_level * (5 * accesses + 5)``; nothing is ever materialized,
    which is exactly the regime the columnar append path is built for.
    Accesses are registered on first touch, so streaming the generator
    grows the system type as a real event source would.
    """
    names = list(system_type.object_names())
    state = {name: 0 for name in names}
    sequence = 0
    for i in range(top_level):
        txn = ROOT.child(f"t{i}")
        yield RequestCreate(txn)
        yield Create(txn)
        for a in range(accesses):
            obj = names[sequence % len(names)]
            if sequence % WRITE_EVERY == WRITE_EVERY - 1:
                op, value = WriteOp(sequence), OK
                state[obj] = sequence
            else:
                op, value = ReadOp(), state[obj]
            sequence += 1
            access = txn.child(f"a{a}")
            system_type.register_access(access, Access(obj, op))
            yield RequestCreate(access)
            yield Create(access)
            yield RequestCommit(access, value)
            yield Commit(access)
            yield ReportCommit(access, value)
        yield RequestCommit(txn, "done")
        yield Commit(txn)
        yield ReportCommit(txn, "done")


def timed_indexed(behavior, system_type):
    registry = MetricsRegistry()
    start = time.perf_counter()
    certificate = certify(
        behavior,
        system_type,
        construct_witness=False,
        metrics=registry,
        indexed=True,
    )
    seconds = time.perf_counter() - start
    return certificate, seconds, registry.snapshot()["counters"]


def timed_columnar(system_type, top_level):
    """Time the columnar lane end to end, generation included.

    The event stream is produced lazily *inside* the timed region —
    the columnar engine's cost includes folding every action into the
    int columns, so this is the honest streaming figure (and it still
    has to clear the 10x bar against an indexed lane whose behavior
    tuple was materialized for free, outside its timer).
    """
    registry = MetricsRegistry()
    start = time.perf_counter()
    certificate = certify_columnar(
        stream_read_heavy_history(system_type, top_level),
        system_type,
        construct_witness=False,
        metrics=registry,
    )
    seconds = time.perf_counter() - start
    return certificate, seconds, registry.snapshot()["counters"]


CASES = pick([120, 240, 480], [2, 3])


def run_comparison():
    rows = []
    report = {}
    for top_level in CASES:
        system_type = read_heavy_system()
        # materialize once for the indexed lane only — outside its timer
        behavior = tuple(stream_read_heavy_history(system_type, top_level))
        indexed, idx_seconds, idx_counters = timed_indexed(
            behavior, system_type
        )
        columnar, col_seconds, col_counters = timed_columnar(
            system_type, top_level
        )
        assert indexed.certified and columnar.certified
        assert indexed.cycle is None and columnar.cycle is None
        assert len(indexed.arv_violations) == len(columnar.arv_violations) == 0
        assert col_counters["history.columnar.events"] == len(behavior)
        speedup = idx_seconds / max(col_seconds, 1e-9)
        label = f"top{top_level}"
        report[label] = {
            "events": len(behavior),
            "indexed_seconds": idx_seconds,
            "columnar_seconds": col_seconds,
            "speedup": speedup,
            "columnar_counters": {
                name: value
                for name, value in col_counters.items()
                if name.startswith("history.columnar.")
            },
        }
        rows.append(
            (
                label,
                len(behavior),
                int(col_counters["history.columnar.conflict.pairs_bitset"]),
                int(col_counters["history.columnar.conflict.pairs_checked"]),
                f"{col_seconds * 1e3:.1f}",
                f"{idx_seconds * 1e3:.1f}",
                f"{speedup:.1f}x",
            )
        )
    write_bench_json("e17_columnar", report)
    return report, rows


@pytest.mark.benchmark(group="e17")
def test_e17_columnar_vs_indexed_certification(benchmark):
    report, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E17: columnar engine vs shared history index, read-heavy histories",
        [
            "case",
            "events",
            "pairs bitset",
            "pairs checked",
            "columnar (ms)",
            "indexed (ms)",
            "speedup",
        ],
        rows,
    )
    largest = report[f"top{CASES[-1]}"]
    counters = largest["columnar_counters"]
    # the RW bitset sweep must carry the whole conflict phase: the
    # generic per-pair fallback never runs on pure read/write objects
    assert counters["history.columnar.conflict.pairs_bitset"] > 0
    assert counters["history.columnar.conflict.pairs_checked"] == 0
    assert counters["history.columnar.builds"] == 1
    if not SMOKE:
        speedups = [report[f"top{t}"]["speedup"] for t in CASES]
        assert largest["events"] >= 50_000, largest["events"]
        assert speedups[-1] >= 10.0, speedups
