"""E16 — distributed certification: local-vs-global divergence and merge cost.

A site certifies its own history with the unchanged single-site
machinery; the global certifier merges the per-site serialization
graphs and re-checks acyclicity (``repro.distributed``).  Two questions
have a price:

* **How often does local-only certification lie?**  Seed sweeps over
  the partition-prone cross-reading workload
  (:func:`repro.distributed.divergence_config`) count the runs where
  every per-site SG is acyclic but the merged global SG is cyclic —
  each one a run a local-only checker would have wrongly passed.
* **What does the merge cost?**  The global pass re-certifies nothing;
  it unions per-site graphs and runs one cycle search.  Scaling the
  workload (pairs of cross-reading transactions, then sites) prices
  the merge against the per-site certification it rides on.

Results land in ``BENCH_e16_distributed.json``: per-case divergence
counts and rates, plus merge timings.  The headline assertion is the
acceptance criterion of the distributed subsystem: a seeded partition
scenario exists whose local graphs are all acyclic while the merged
graph is cyclic.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro.distributed import (
    certify_sites,
    divergence_config,
    merge_site_graphs,
    run_distributed,
)
from repro.core.correctness import certify

#: (label, sites, cross-reading pairs, crash schedule?)
CASES = pick(
    [
        ("2s-2p", 2, 2, False),
        ("2s-4p", 2, 4, False),
        ("3s-4p", 3, 4, False),
        ("2s-2p-crash", 2, 2, True),
    ],
    [
        ("2s-2p", 2, 2, False),
        ("2s-2p-crash", 2, 2, True),
    ],
)

#: seeds per case
SEEDS = pick(200, 15)


def sweep_case(label, sites, pairs, crash):
    """Run SEEDS seeded simulations; count verdicts and time the merge."""
    divergent_seeds = []
    rejected = 0
    locally_rejected = 0
    site_seconds = 0.0
    merge_seconds = 0.0
    routed = 0
    example = None
    for seed in range(SEEDS):
        config = divergence_config(seed, sites=sites, pairs=pairs, crash=crash)
        run = run_distributed(config)
        routed += run.routing.routed_accesses()
        start = time.perf_counter()
        site_certs = {
            site: certify(
                site_run.behavior,
                site_run.system_type,
                construct_witness=False,
            )
            for site, site_run in run.site_runs.items()
        }
        site_seconds += time.perf_counter() - start
        start = time.perf_counter()
        merged, _ = merge_site_graphs(
            {site: cert.graph for site, cert in site_certs.items()}
        )
        cycle = merged.find_cycle()
        merge_seconds += time.perf_counter() - start
        local_ok = all(cert.certified for cert in site_certs.values())
        global_ok = cycle is None and all(
            not cert.arv_violations for cert in site_certs.values()
        )
        if not local_ok:
            locally_rejected += 1
        if not global_ok:
            rejected += 1
        if local_ok and not global_ok:
            divergent_seeds.append(seed)
            if example is None:
                example = {
                    "seed": seed,
                    "cycle": [str(node) for node in cycle[1]],
                    "local_edges": {
                        f"s{site}": cert.graph.edge_count()
                        for site, cert in site_certs.items()
                    },
                    "merged_edges": merged.edge_count(),
                }
    return {
        "sites": sites,
        "pairs": pairs,
        "crash": crash,
        "seeds": SEEDS,
        "routed_accesses": routed,
        "locally_rejected": locally_rejected,
        "globally_rejected": rejected,
        "divergent": len(divergent_seeds),
        "divergence_rate": len(divergent_seeds) / SEEDS,
        "divergent_seeds": divergent_seeds[:20],
        "example": example,
        "site_certify_seconds": site_seconds,
        "merge_seconds": merge_seconds,
        "merge_share": merge_seconds / max(site_seconds + merge_seconds, 1e-9),
    }


def run_comparison():
    report = {}
    rows = []
    for label, sites, pairs, crash in CASES:
        result = sweep_case(label, sites, pairs, crash)
        report[label] = result
        rows.append(
            (
                label,
                result["seeds"],
                result["globally_rejected"],
                result["divergent"],
                f"{result['divergence_rate']:.0%}",
                f"{result['site_certify_seconds'] * 1e3:.0f}ms",
                f"{result['merge_seconds'] * 1e3:.0f}ms",
                f"{result['merge_share']:.1%}",
            )
        )
    write_bench_json("e16_distributed", report)
    return report, rows


@pytest.mark.benchmark(group="e16")
def test_e16_distributed_divergence(benchmark):
    report, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E16: local-vs-global certification over seeded partition workloads",
        [
            "case",
            "seeds",
            "global rej",
            "divergent",
            "rate",
            "site certify",
            "merge",
            "merge share",
        ],
        rows,
    )
    base = report["2s-2p"]
    # the acceptance scenario: seeds where every local SG is acyclic but
    # the merged global SG is cyclic
    assert base["divergent"] >= 1, "no divergent seed found"
    example = base["example"]
    assert example is not None
    assert len(example["cycle"]) >= 3  # first node repeated last
    assert example["merged_edges"] >= sum(example["local_edges"].values()) // 2
    # divergence implies global rejection, and a local rejection (cycle
    # or ARV violation) always survives into the merged verdict
    for case in report.values():
        assert case["divergent"] <= case["globally_rejected"]
        assert case["locally_rejected"] <= case["globally_rejected"]
    # the merge is cheap next to the per-site certification it rides on
    assert base["merge_share"] < 0.5
    # certify_sites agrees with the inlined pipeline on the example seed
    run = run_distributed(divergence_config(example["seed"]))
    certificate = certify_sites(
        {
            site: (site_run.behavior, site_run.system_type)
            for site, site_run in run.site_runs.items()
        }
    )
    assert certificate.divergent
    if not SMOKE:
        # at full size the sweep must find a meaningful divergence rate
        assert base["divergent"] >= 10
        assert report["2s-4p"]["routed_accesses"] > base["routed_accesses"]
