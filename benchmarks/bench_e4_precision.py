"""E4 — sufficiency, not necessity: how often does the SG test reject
serially correct behaviors?

Unlike the classical theory, acyclicity of the nested serialization
graph is only a *sufficient* condition for the user-view correctness
notion.  We generate small random interleaved behaviors (including
non-locking ones), decide ground truth with the brute-force oracle, and
report the confusion table.  Expected shape:

* soundness — no behavior certified by the SG test is rejected by the
  oracle (zero false accepts);
* incompleteness — a *nonzero* fraction of oracle-correct behaviors is
  rejected by the SG test (the blind-write phenomenon).
"""

import itertools
import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    OK,
    Access,
    Commit,
    Create,
    ObjectName,
    ReadOp,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    RWSpec,
    SystemType,
    TransactionName,
    WriteOp,
    certify,
    oracle_serially_correct,
)


def random_behavior(seed: int):
    """A random interleaving of two top-level transactions' access ceremonies.

    Accesses are blind reads/writes over two objects; read values are
    chosen from plausible candidates so that both ARV-satisfying and
    ARV-violating behaviors occur.
    """
    rng = random.Random(seed)
    objects = {ObjectName("x"): RWSpec(initial=0), ObjectName("y"): RWSpec(initial=0)}
    system_type = SystemType(objects)
    behavior = []
    tops = [TransactionName(("t1",)), TransactionName(("t2",))]
    for top in tops:
        behavior += [RequestCreate(top), Create(top)]
    # build per-transaction access scripts
    scripts = {}
    for index, top in enumerate(tops):
        ops = []
        for position in range(rng.randint(1, 3)):
            obj = ObjectName(rng.choice(["x", "y"]))
            if rng.random() < 0.6:
                ops.append((obj, WriteOp(rng.randint(1, 2))))
            else:
                ops.append((obj, ReadOp()))
        scripts[top] = ops
    # interleave access ceremonies randomly; track an update-in-place value
    # per object (over non-aborted writes) to generate mostly-plausible reads
    pending = {top: list(ops) for top, ops in scripts.items()}
    current = {obj: 0 for obj in objects}
    counter = itertools.count()
    while any(pending.values()):
        top = rng.choice([t for t, ops in pending.items() if ops])
        obj, op = pending[top].pop(0)
        access = top.child(f"a{next(counter)}")
        system_type.register_access(access, Access(obj, op))
        if isinstance(op, WriteOp):
            value = OK
            current[obj] = op.data
        else:
            # usually the current value; sometimes a stale/wrong one
            value = current[obj] if rng.random() < 0.8 else rng.randint(0, 2)
        behavior += [
            RequestCreate(access),
            Create(access),
            RequestCommit(access, value),
            Commit(access),
            ReportCommit(access, value),
        ]
    for top in tops:
        behavior += [
            RequestCommit(top, "done"),
            Commit(top),
            ReportCommit(top, "done"),
        ]
    return tuple(behavior), system_type


def run_sweep(samples: int):
    both_accept = only_oracle = only_sg = both_reject = 0
    for seed in range(samples):
        behavior, system_type = random_behavior(seed)
        sg = certify(behavior, system_type, construct_witness=False).certified
        oracle = bool(
            oracle_serially_correct(behavior, system_type, max_orders=2000)
        )
        if sg and oracle:
            both_accept += 1
        elif oracle and not sg:
            only_oracle += 1
        elif sg and not oracle:
            only_sg += 1
        else:
            both_reject += 1
    return both_accept, only_oracle, only_sg, both_reject


@pytest.mark.benchmark(group="e4")
def test_e4_precision(benchmark):
    samples = pick(150, 10)
    both_accept, only_oracle, only_sg, both_reject = benchmark.pedantic(
        run_sweep, args=(samples,), rounds=1, iterations=1
    )
    print_table(
        "E4: SG test vs brute-force oracle on random behaviors",
        ["verdict", "count", "fraction"],
        [
            ("certified & correct", both_accept, f"{both_accept / samples:.2f}"),
            (
                "correct but rejected (incompleteness)",
                only_oracle,
                f"{only_oracle / samples:.2f}",
            ),
            ("certified but incorrect (UNSOUND!)", only_sg, f"{only_sg / samples:.2f}"),
            ("rejected & incorrect", both_reject, f"{both_reject / samples:.2f}"),
        ],
    )
    assert only_sg == 0, "the SG test accepted an incorrect behavior"
    if not SMOKE:  # the shape claims need the full sample size
        assert only_oracle > 0, "expected some correct-but-rejected behaviors"
        assert both_accept > 0
