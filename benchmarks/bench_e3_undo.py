"""E3 — Theorem 25: undo logging is serially correct over arbitrary types.

Sweeps the built-in data types (counter, set, bank account, queue,
exact register) and abort rates; every behavior must be certified by
the generalized serialization-graph test of Section 6.  Expected shape:
zero violations anywhere.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    AbortInjector,
    BankAccountKind,
    CounterKind,
    MapKind,
    QueueKind,
    RandomPolicy,
    RegisterKind,
    SetKind,
    UndoLoggingObject,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)

KINDS = [
    ("counter", CounterKind()),
    ("set", SetKind()),
    ("bank", BankAccountKind()),
    ("queue", QueueKind()),
    ("register", RegisterKind()),
    ("map", MapKind()),
]
ABORT_RATES = pick([0.0, 0.2], [0.0])
SEEDS = pick(range(4), range(1))


def run_sweep():
    rows = []
    for label, kind in KINDS:
        for abort_rate in ABORT_RATES:
            violations = committed = blocked = 0
            for seed in SEEDS:
                config = WorkloadConfig(
                    seed=seed, top_level=6, objects=2, max_depth=2, kind=kind
                )
                system_type, programs = generate_workload(config)
                system = make_generic_system(
                    system_type, programs, UndoLoggingObject
                )
                policy = AbortInjector(
                    RandomPolicy(seed), abort_rate=abort_rate, seed=seed
                )
                result = run_system(
                    system, policy, system_type, max_steps=10_000,
                    collect_blocking=True, resolve_deadlocks=True,
                )
                certificate = certify(result.behavior, system_type)
                if not (certificate.certified and not certificate.witness_problems):
                    violations += 1
                committed += result.stats.top_level_committed
                blocked += result.stats.blocked_access_steps
            rows.append(
                (label, abort_rate, len(SEEDS), committed, blocked, violations)
            )
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_undo_theorem25(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E3: Theorem 25 — undo logging over arbitrary data types",
        ["type", "abort%", "runs", "committed", "blocked", "violations"],
        rows,
    )
    assert all(row[-1] == 0 for row in rows)
    if not SMOKE:
        # commutativity shape: the counter blocks less than the queue
        blocked = {row[0]: row[4] for row in rows if row[1] == 0.0}
        assert blocked["counter"] <= blocked["queue"]
