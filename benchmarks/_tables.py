"""Tiny table printer shared by the experiment benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned text table, flushed so it survives pytest capture."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in materialised:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print(flush=True)
