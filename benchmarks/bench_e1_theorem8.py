"""E1 — Theorem 8 validation (read/write objects).

For randomized nested workloads executed under Moss locking, every
produced simple behavior that passes the two hypotheses (appropriate
return values + acyclic SG) must be serially correct; on small
instances we confirm against the brute-force oracle.  Expected shape:
zero disagreements, zero witness failures, across the whole sweep.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _smoke import pick
from _tables import print_table

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    RandomPolicy,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    oracle_serially_correct,
    run_system,
)

SWEEP = pick(
    [
        # (top_level, objects, depth, seeds)
        (2, 2, 1, range(6)),
        (3, 2, 2, range(6)),
        (3, 3, 2, range(6)),
        (4, 4, 3, range(6)),
    ],
    [(2, 2, 1, range(2))],
)


def run_sweep(check_oracle: bool):
    rows = []
    for top_level, objects, depth, seeds in SWEEP:
        certified = witness_ok = oracle_agree = total = 0
        for seed in seeds:
            config = WorkloadConfig(
                seed=seed,
                top_level=top_level,
                objects=objects,
                max_depth=depth,
                max_calls=2,
            )
            system_type, programs = generate_workload(config)
            system = make_generic_system(system_type, programs, MossRWLockingObject)
            policy = RandomPolicy(seed) if seed % 2 else EagerInformPolicy(seed=seed)
            result = run_system(
                system, policy, system_type, max_steps=4000, resolve_deadlocks=True
            )
            certificate = certify(result.behavior, system_type)
            total += 1
            if certificate.certified:
                certified += 1
                if not certificate.witness_problems:
                    witness_ok += 1
                small = top_level <= 3
                if check_oracle and small:
                    if oracle_serially_correct(
                        result.behavior, system_type, max_orders=3000
                    ):
                        oracle_agree += 1
                else:
                    oracle_agree += 1
        rows.append(
            (top_level, objects, depth, total, certified, witness_ok, oracle_agree)
        )
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_theorem8_validation(benchmark):
    rows = benchmark.pedantic(run_sweep, args=(True,), rounds=1, iterations=1)
    print_table(
        "E1: Theorem 8 — certified runs carry validated witnesses and agree "
        "with the oracle",
        ["top", "objs", "depth", "runs", "certified", "witness ok", "oracle ok"],
        rows,
    )
    for top, objs, depth, total, certified, witness_ok, oracle_agree in rows:
        assert certified == total, "a Moss run failed the Theorem 8 hypotheses"
        assert witness_ok == certified
        assert oracle_agree == certified
