"""E18 — static robustness analysis vs bounded dynamic exploration.

The PR 10 robustness analyzer (``repro.analysis.robustness``) decides
whether a set of ``TransactionProgram`` templates can *ever* produce a
cyclic serialization graph, without running the system: summary
extraction, a static serialization graph over template footprints via
the commutativity probes, realizability-checked dangerous structures,
and a directed validation bridge that replays each counterexample
through the real driver over a ``PermissiveObject``.

The alternative it replaces is undirected search: run the program set
under seeded exploration and hope an interleaving trips the oracle.
This benchmark times both lanes over the shipped scenario catalogue and
a generated-workload corpus, asserts every verdict matches the recorded
expectation and every NOT-ROBUST verdict is dynamically witnessed, and
writes ``BENCH_e18_robustness.json``: static analysis cost, validated
(static + directed replay) cost, bounded-exploration cost, and how
often blind exploration even *finds* the cycle the analyzer proves.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro.analysis.robustness import analyze_robustness, explore_program_set
from repro.obs import MetricsRegistry
from repro.scenarios import build_program_scenario, program_scenario_names
from repro.sim.workload import WorkloadConfig, generate_program_set

#: seeds handed to the undirected-exploration baseline per program set
EXPLORE_SEEDS = pick(16, 2)
#: generated program sets analysed in the corpus lane
GENERATED_SETS = pick(60, 4)
GENERATED_BASE_SEED = 4200


def timed_analysis(objects, programs, validate):
    registry = MetricsRegistry()
    start = time.perf_counter()
    report = analyze_robustness(
        objects, programs, validate=validate, metrics=registry
    )
    seconds = time.perf_counter() - start
    return report, seconds, registry.snapshot()["counters"]


def timed_exploration(objects, programs):
    start = time.perf_counter()
    cycle = explore_program_set(objects, programs, seeds=EXPLORE_SEEDS)
    seconds = time.perf_counter() - start
    return cycle, seconds


def run_catalogue():
    rows = []
    scenarios = {}
    for name in program_scenario_names():
        objects, programs, expectation = build_program_scenario(name)
        static_report, static_seconds, _ = timed_analysis(
            objects, programs, validate=False
        )
        report, validated_seconds, counters = timed_analysis(
            objects, programs, validate=not expectation.robust
        )
        assert static_report.robust == report.robust == expectation.robust
        if expectation.classification:
            assert expectation.classification in report.classifications
        if not expectation.robust:
            # the validation bridge must witness the predicted cycle
            assert report.validations and report.witnessed
        objects, programs, _ = build_program_scenario(name)
        cycle, explore_seconds = timed_exploration(objects, programs)
        scenarios[name] = {
            "robust": report.robust,
            "classifications": sorted(report.classifications),
            "static_seconds": static_seconds,
            "validated_seconds": validated_seconds,
            "explore_seconds": explore_seconds,
            "explore_found_cycle": cycle is not None,
            "counters": {
                key: value
                for key, value in counters.items()
                if key.startswith("robustness.")
            },
        }
        rows.append(
            (
                name,
                report.verdict,
                f"{static_seconds * 1e3:.1f}",
                f"{validated_seconds * 1e3:.1f}",
                f"{explore_seconds * 1e3:.1f}",
                "yes" if cycle is not None else "no",
            )
        )
    return scenarios, rows


def run_generated_corpus():
    robust = not_robust = 0
    start = time.perf_counter()
    for offset in range(GENERATED_SETS):
        config = WorkloadConfig(
            objects=2,
            top_level=3,
            max_calls=2,
            seed=GENERATED_BASE_SEED + offset,
        )
        objects, programs = generate_program_set(config)
        report = analyze_robustness(objects, programs, validate=False)
        if report.robust:
            # soundness spot-check: a ROBUST verdict means no seeded
            # exploration may ever surface a cyclic serialization graph
            objects, programs = generate_program_set(config)
            assert explore_program_set(objects, programs, seeds=2) is None
            robust += 1
        else:
            not_robust += 1
    seconds = time.perf_counter() - start
    return {
        "sets": GENERATED_SETS,
        "robust": robust,
        "not_robust": not_robust,
        "total_seconds": seconds,
        "seconds_per_set": seconds / max(GENERATED_SETS, 1),
    }


def run_benchmark():
    scenarios, rows = run_catalogue()
    corpus = run_generated_corpus()
    report = {"scenarios": scenarios, "generated": corpus}
    write_bench_json("e18_robustness", report)
    return report, rows


@pytest.mark.benchmark(group="e18")
def test_e18_static_analysis_vs_exploration(benchmark):
    report, rows = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    print_table(
        "E18: robustness analyzer vs bounded undirected exploration",
        [
            "scenario",
            "verdict",
            "static (ms)",
            "validated (ms)",
            f"explore x{EXPLORE_SEEDS} (ms)",
            "explored cycle",
        ],
        rows,
    )
    scenarios = report["scenarios"]
    dangerous = [s for s in scenarios.values() if not s["robust"]]
    assert dangerous, "catalogue lost its NOT-ROBUST scenarios"
    # every dangerous scenario carries at least one counterexample and
    # a directed validation run
    for entry in dangerous:
        counters = entry["counters"]
        assert counters["robustness.counterexamples"] >= 1
        assert counters["robustness.validation.directed"] >= 1
        assert counters.get("robustness.validation.missed", 0) == 0
    corpus = report["generated"]
    assert corpus["robust"] + corpus["not_robust"] == corpus["sets"]
    if not SMOKE:
        # full mode exercises a corpus with both verdicts represented
        assert corpus["robust"] > 0 and corpus["not_robust"] > 0
        # the directed bridge must beat undirected search at *finding*
        # the cycle: every NOT-ROBUST catalogue verdict is witnessed by
        # the directed schedule itself, never only by the random
        # fallback — blind exploration may miss even with many seeds
        for entry in dangerous:
            counters = entry["counters"]
            assert counters["robustness.validation.directed"] >= 1
            assert counters.get("robustness.validation.explored", 0) == 0
