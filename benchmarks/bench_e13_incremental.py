"""E13 — incremental certification: Pearce–Kelly vs naive per-edge DFS.

The online certifier's hot path is the acyclicity check after every new
sibling edge.  The naive engine re-runs a full DFS over the whole
sibling group per edge — O(V + E) each, O(E·(V + E)) over a stream.
The incremental engine (``OnlineCertifier(..., incremental=True)``, the
default) maintains a Pearce–Kelly topological order: an edge whose
endpoints are already ordered consistently costs O(1), and only
out-of-order inserts search the affected index region.

On a *growing history* — new transactions conflicting with ever more
committed predecessors, the append-mostly shape a monitoring deployment
sees — every insert is order-consistent, so the incremental engine does
constant work per edge while the naive engine's DFS grows with the
graph.  This benchmark times both engines on identical streams, asserts
verdict equality, and writes ``BENCH_e13_incremental.json`` with the
speedups and the cost-driver counters.
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _obs import write_bench_json
from _smoke import SMOKE, pick
from _tables import print_table

from repro import (
    OK,
    Access,
    Commit,
    Create,
    MetricsRegistry,
    ObjectName,
    OnlineCertifier,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    ROOT,
    RWSpec,
    SystemType,
    WriteOp,
    certify,
)


def growing_history(top_level: int, objects: int = 2):
    """``top_level`` sequential writers over ``objects`` hot objects.

    Every pair of writers on the same object conflicts, and every
    committed writer precedes every later-created one, so the ROOT
    sibling group accumulates O(n²) edges — all consistent with the
    creation order (acyclic), the worst case for per-edge full DFS.
    """
    names = [ObjectName(f"X{i}") for i in range(objects)]
    system_type = SystemType({name: RWSpec(initial=0) for name in names})
    actions = []
    for i in range(top_level):
        txn = ROOT.child(f"t{i}")
        access = txn.child("w")
        system_type.register_access(
            access, Access(names[i % objects], WriteOp(i))
        )
        actions += [
            RequestCreate(txn),
            Create(txn),
            RequestCreate(access),
            Create(access),
            RequestCommit(access, OK),
            Commit(access),
            ReportCommit(access, OK),
            RequestCommit(txn, "done"),
            Commit(txn),
            ReportCommit(txn, "done"),
        ]
    return tuple(actions), system_type


def timed_stream(behavior, system_type, incremental: bool):
    registry = MetricsRegistry()
    certifier = OnlineCertifier(
        system_type, metrics=registry, incremental=incremental
    )
    start = time.perf_counter()
    for action in behavior:
        certifier.feed(action)
    seconds = time.perf_counter() - start
    return certifier.verdict(), seconds, registry.snapshot()["counters"]


CASES = pick([(32, 2), (64, 2), (96, 2)], [(8, 2), (12, 2)])


def run_comparison():
    rows = []
    report = {}
    for top_level, objects in CASES:
        behavior, system_type = growing_history(top_level, objects)
        incremental, inc_seconds, inc_counters = timed_stream(
            behavior, system_type, incremental=True
        )
        naive, naive_seconds, naive_counters = timed_stream(
            behavior, system_type, incremental=False
        )
        assert incremental.certified == naive.certified
        assert (incremental.cycle is None) == (naive.cycle is None)
        assert incremental.certified  # the growing history is acyclic
        assert certify(behavior, system_type, construct_witness=False).certified
        speedup = naive_seconds / max(inc_seconds, 1e-9)
        label = f"top{top_level}_obj{objects}"
        report[label] = {
            "events": len(behavior),
            "edges": int(inc_counters.get("online.edges.conflict", 0))
            + int(inc_counters.get("online.edges.precedes", 0)),
            "incremental_seconds": inc_seconds,
            "naive_seconds": naive_seconds,
            "speedup": speedup,
            "incremental_counters": {
                name: value
                for name, value in inc_counters.items()
                if name.startswith("online.incremental.")
            },
            "naive_cycle_checks": int(naive_counters.get("online.cycle_checks", 0)),
        }
        rows.append(
            (
                label,
                len(behavior),
                report[label]["edges"],
                f"{inc_seconds * 1e3:.1f}",
                f"{naive_seconds * 1e3:.1f}",
                f"{speedup:.1f}x",
            )
        )
    write_bench_json("e13_incremental", report)
    return report, rows


@pytest.mark.benchmark(group="e13")
def test_e13_incremental_vs_naive(benchmark):
    report, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "E13: incremental (Pearce-Kelly) vs naive per-edge DFS, growing history",
        ["case", "events", "edges", "incremental (ms)", "naive (ms)", "speedup"],
        rows,
    )
    if not SMOKE:
        # the speedup must be real and must grow with the history
        speedups = [report[f"top{t}_obj{o}"]["speedup"] for t, o in CASES]
        assert speedups[-1] > 2.0, speedups
        assert speedups[-1] > speedups[0], speedups
    # on an append-only history every insert is order-consistent:
    # the affected region never contains a single node
    largest = report[f"top{CASES[-1][0]}_obj{CASES[-1][1]}"]
    assert largest["incremental_counters"]["online.incremental.affected_nodes"] == 0
