# Convenience targets for the repro library.

.PHONY: install test bench examples scenarios all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

scenarios:
	python -m repro scenarios

all: test bench examples
