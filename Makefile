# Convenience targets for the repro library.

.PHONY: install test bench bench-smoke examples scenarios trace-demo docs ci all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Tiny-sized run of every benchmark: catches import errors and API drift
# in seconds, skips perf assertions and BENCH_*.json output (the CI job)
bench-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

scenarios:
	python -m repro scenarios

# Run a seeded workload under full tracing/metrics; see docs/OBSERVABILITY.md
trace-demo:
	PYTHONPATH=src python -m repro trace --seed 7 --out trace-demo.jsonl --online
	@echo "trace: trace-demo.jsonl  metrics: trace-demo.jsonl.metrics.json"

# Execute every fenced python block in the user-facing docs (the CI docs job)
docs:
	python tools/run_doc_examples.py README.md docs/TUTORIAL.md docs/ARCHITECTURE.md docs/PERFORMANCE.md

# Mirror the GitHub Actions CI job locally
ci:
	PYTHONPATH=src python -m pytest -x -q

all: test bench examples
