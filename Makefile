# Convenience targets for the repro library.

.PHONY: install test bench bench-smoke examples scenarios trace-demo docs lint typecheck robustness ci all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Tiny-sized run of every benchmark: catches import errors and API drift
# in seconds, skips perf assertions and BENCH_*.json output (the CI job)
bench-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
		echo; \
	done

scenarios:
	python -m repro scenarios

# Run a seeded workload under full tracing/metrics; see docs/OBSERVABILITY.md
trace-demo:
	PYTHONPATH=src python -m repro trace --seed 7 --out trace-demo.jsonl --online
	@echo "trace: trace-demo.jsonl  metrics: trace-demo.jsonl.metrics.json"

# Execute every fenced python block in the user-facing docs (the CI docs job)
docs:
	python tools/run_doc_examples.py README.md docs/TUTORIAL.md docs/ARCHITECTURE.md docs/PERFORMANCE.md docs/DISTRIBUTED.md

# Project static analysis: AST rules R001-R004, spec soundness, docs
# drift. Exit 1 on any finding; see docs/STATIC_ANALYSIS.md.
lint:
	PYTHONPATH=src python -m repro lint

# mypy --strict over repro.core + repro.analysis (config in
# pyproject.toml); skipped gracefully where mypy is not installed.
typecheck:
	@if python -c "import mypy" 2>/dev/null; then \
		PYTHONPATH=src python -m mypy; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install mypy)"; \
	fi

# Program-level robustness analysis over the scenario catalogue, with
# dynamic validation of every NOT-ROBUST verdict (the CI robustness job)
robustness:
	PYTHONPATH=src python -m repro robustness

# Mirror the GitHub Actions CI jobs locally
ci: lint typecheck robustness
	PYTHONPATH=src python -m pytest -x -q

all: test bench examples
