#!/usr/bin/env python3
"""Per-object algorithm mixing — the modularity the paper argues for.

The introduction motivates modular proofs: "when one object is
reimplemented (for performance reasons) in a previously correct system,
the new system may be proved correct without needing to reconsider
those parts that have not changed."  Because Theorems 17/25 verify each
object *independently*, a single system may freely mix algorithms:

* ``inventory`` — a hot counter under **undo logging** (increments
  commute, so restock/sale transactions never block each other);
* ``ledger``   — an append-style register under **Moss RW locking**
  (the classical default);
* ``audit_log``— a FIFO queue under **read/update locking** (queues
  barely commute, so pessimistic exclusive locks are the right call).

One workload touches all three; the run is certified by the same
serialization-graph test, which never needed to know which algorithm
served which object.
"""

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    ReadUpdateLockingObject,
    RWSpec,
    UndoLoggingObject,
    certify,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.programs import TransactionProgram, op, read, seq, sub, system_type_for, write
from repro.spec.builtin import CounterInc, CounterRead, CounterType, Enqueue, QueueType

INVENTORY = ObjectName("inventory")
LEDGER = ObjectName("ledger")
AUDIT = ObjectName("audit_log")


def sale(i: int) -> TransactionProgram:
    return seq(
        op(INVENTORY, CounterInc(-1), "take"),
        write(LEDGER, f"sale#{i}", "record"),
        op(AUDIT, Enqueue(f"sale#{i}"), "log"),
        result=f"sold#{i}",
    )


def restock(i: int, amount: int) -> TransactionProgram:
    return seq(
        op(INVENTORY, CounterInc(amount), "add"),
        op(AUDIT, Enqueue(f"restock#{i}"), "log"),
        result=f"restocked#{i}",
    )


def audit() -> TransactionProgram:
    return seq(
        op(INVENTORY, CounterRead(), "count"),
        read(LEDGER, "last_entry"),
        result="audited",
    )


def main() -> None:
    calls = (
        sub(sale(0), "sale0"),
        sub(restock(0, 10), "restock0"),
        sub(sale(1), "sale1"),
        sub(audit(), "audit"),
        sub(sale(2), "sale2"),
    )
    programs = {ROOT: TransactionProgram(calls, sequential=False)}
    system_type = system_type_for(
        {
            INVENTORY: CounterType(initial=100),
            LEDGER: RWSpec(initial="<empty>"),
            AUDIT: QueueType(),
        },
        programs,
    )
    factories = {
        INVENTORY: UndoLoggingObject,
        LEDGER: MossRWLockingObject,
        AUDIT: ReadUpdateLockingObject,
    }
    system = make_generic_system(system_type, programs, factories)
    result = run_system(
        system,
        EagerInformPolicy(seed=5),
        system_type,
        max_steps=8000,
        resolve_deadlocks=True,
    )
    print(f"Run: {result.stats.summary()}\n")

    certificate = certify(result.behavior, system_type)
    print(certificate.explain())
    assert certificate.certified

    print("\nObject algorithms in this one system:")
    for obj, factory in factories.items():
        print(f"  {str(obj):12s} -> {factory.__name__}")
    print("\nThe certifier never knew which algorithm served which object —")
    print("each generic object is verified independently, so they compose.")


if __name__ == "__main__":
    main()
