#!/usr/bin/env python3
"""Nested bank transfers with failures — money conservation under aborts.

Each top-level transaction transfers money between two accounts using a
*nested* structure: the debit and the credit run as subtransactions (two
"simultaneous remote procedure calls", as the paper's introduction
motivates).  Accounts are objects of the bank-account data type managed
by the undo logging algorithm of Section 6.2, so deposits and successful
withdrawals exploit commutativity instead of read/write locks.

A fault injector aborts whole transfers at random.  The undo log excises
an aborted transfer's debit *and* credit together, so afterwards the
books still balance: total money = initial money + nothing.  Finally the
run is certified serially correct (Theorem 25).
"""

from repro import (
    AbortInjector,
    ObjectName,
    RandomPolicy,
    UndoLoggingObject,
    certify,
    make_generic_system,
    run_system,
    serial_projection,
    visible_projection,
)
from repro.core import ROOT, StatusIndex
from repro.core.operations import operation_payloads, operations_of_object
from repro.sim.programs import TransactionProgram, op, seq, sub, system_type_for
from repro.spec.builtin import BankAccountType, Deposit, Withdraw

ACCOUNTS = [ObjectName(name) for name in ("alice", "bob", "carol", "dave")]
INITIAL = 100
# All debits hit alice's account: successful withdrawals commute backward
# (Weihl's example), so undo logging runs every transfer concurrently where
# read/write locking would serialise them on the hot account.
TRANSFERS = [
    ("alice", "bob", 10),
    ("alice", "carol", 20),
    ("alice", "dave", 5),
    ("alice", "bob", 15),
]


def transfer_program(source: str, target: str, amount: int) -> TransactionProgram:
    debit = seq(op(ObjectName(source), Withdraw(amount), "withdraw"))
    credit = seq(op(ObjectName(target), Deposit(amount), "deposit"))
    return TransactionProgram(
        (sub(debit, "debit"), sub(credit, "credit")),
        sequential=False,
        result=f"{source}->{target}:{amount}",
    )


def main() -> None:
    root = TransactionProgram(
        tuple(
            sub(transfer_program(src, dst, amount), f"transfer{i}")
            for i, (src, dst, amount) in enumerate(TRANSFERS)
        ),
        sequential=False,
    )
    programs = {ROOT: root}
    system_type = system_type_for(
        {account: BankAccountType(initial=INITIAL) for account in ACCOUNTS},
        programs,
    )

    system = make_generic_system(system_type, programs, UndoLoggingObject)
    policy = AbortInjector(
        RandomPolicy(seed=11),
        abort_rate=0.04,
        seed=11,
        victim_filter=lambda t: t.depth == 1,  # abort whole transfers only
        max_aborts=2,
    )
    result = run_system(
        system, policy, system_type, max_steps=6000, resolve_deadlocks=True
    )
    print(f"Run: {result.stats.summary()}")
    print(f"Injected transfer aborts: {policy.aborts_injected}\n")

    certificate = certify(result.behavior, system_type)
    print(certificate.explain())
    assert certificate.certified

    serial = serial_projection(result.behavior)
    index = StatusIndex(serial)
    visible = visible_projection(serial, ROOT, index)
    print("\nCommitted transfers:")
    for i in range(len(TRANSFERS)):
        from repro import TransactionName

        name = TransactionName((f"transfer{i}",))
        status = (
            "committed" if name in index.committed
            else "ABORTED" if name in index.aborted
            else "incomplete"
        )
        src, dst, amount = TRANSFERS[i]
        print(f"  {src:>6} -> {dst:<6} {amount:3d}   {status}")

    print("\nFinal committed balances:")
    total = 0
    for account in ACCOUNTS:
        spec = system_type.spec(account)
        ops = operations_of_object(visible, account, system_type)
        balance = spec.replay(operation_payloads(ops, system_type))
        total += balance
        print(f"  {account}: {balance}")
    expected = INITIAL * len(ACCOUNTS)
    print(f"\nTotal money: {total} (initially {expected}) — "
          f"{'conserved' if total == expected else 'NOT CONSERVED'}")
    assert total == expected


if __name__ == "__main__":
    main()
