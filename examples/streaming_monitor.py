#!/usr/bin/env python3
"""Streaming audit: watch a live system with the online certifier.

A monitoring deployment cannot wait for the run to finish; it judges the
event stream as it happens.  This example feeds a recorded run into
:class:`repro.OnlineCertifier` one action at a time and logs every
verdict *transition* — including the subtle non-monotone moment where a
read of a not-yet-committed write looks like an ARV violation until the
writer's commit arrives and heals it.
"""

from repro import Commit, OnlineCertifier, certify


def build_scenario():
    """A run whose verdict changes twice while streaming."""
    # local lightweight builder to keep the example self-contained
    from repro import (
        Abort,
        Access,
        Create,
        ObjectName,
        ReadOp,
        ReportAbort,
        ReportCommit,
        RequestCommit,
        RequestCreate,
        RWSpec,
        SystemType,
        TransactionName,
        WriteOp,
        OK,
    )

    system = SystemType({ObjectName("x"): RWSpec(initial=0)})
    events = []

    def begin(name):
        txn = TransactionName((name,))
        events.extend([RequestCreate(txn), Create(txn)])
        return txn

    def access(parent, comp, operation, value, commit=True):
        leaf = parent.child(comp)
        system.register_access(leaf, Access(ObjectName("x"), operation))
        events.extend(
            [RequestCreate(leaf), Create(leaf), RequestCommit(leaf, value)]
        )
        if commit:
            events.extend([Commit(leaf), ReportCommit(leaf, value)])
        return leaf

    def commit(txn):
        events.extend(
            [RequestCommit(txn, "done"), Commit(txn), ReportCommit(txn, "done")]
        )

    t1, t2 = begin("t1"), begin("t2")
    access(t1, "w", WriteOp(5), OK)       # t1 writes 5 (t1 still uncommitted)
    access(t2, "r", ReadOp(), 5)          # t2 reads 5 — looks dirty for now!
    commit(t2)                            # t2 commits: ARV violation appears
    commit(t1)                            # t1 commits: the violation heals
    return tuple(events), system


def main() -> None:
    behavior, system = build_scenario()
    certifier = OnlineCertifier(system)
    last = None
    print("streaming", len(behavior), "events:\n")
    for position, action in enumerate(behavior):
        certifier.feed(action)
        verdict = certifier.verdict()
        state = (
            "OK"
            if verdict.certified
            else ("ARV" if verdict.arv_violations else "CYCLE")
        )
        if state != last:
            print(f"  event {position:2d}  {str(action):45s} -> verdict: {state}")
            for violation in verdict.arv_violations:
                print(f"              {violation}")
            last = state
    print("\nfinal online verdict:", "CERTIFIED" if verdict.certified else "REJECTED")
    batch = certify(behavior, system)
    print("batch certifier agrees:", batch.certified == verdict.certified)


if __name__ == "__main__":
    main()
