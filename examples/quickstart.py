#!/usr/bin/env python3
"""Quickstart: run a nested-transaction workload and certify it.

Builds a random nested workload over read/write objects, executes it
concurrently under Moss' locking algorithm (the Argus/Camelot default),
and then applies the paper's serialization-graph test: appropriate
return values + acyclic SG  =>  serially correct for T0 (Theorem 8/17).
The certifier also constructs an explicit witness serial behavior.
"""

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
    serial_projection,
)
from repro.core.actions import format_behavior


def main() -> None:
    config = WorkloadConfig(seed=7, top_level=4, objects=3, max_depth=2)
    system_type, programs = generate_workload(config)
    print(f"Workload: {len(system_type.all_accesses())} accesses over "
          f"{len(system_type.object_names())} objects\n")

    system = make_generic_system(system_type, programs, MossRWLockingObject)
    result = run_system(
        system, EagerInformPolicy(seed=7), system_type, resolve_deadlocks=True
    )
    print(f"Concurrent run: {result.stats.summary()}\n")

    certificate = certify(result.behavior, system_type)
    print(certificate.explain())
    print(f"\nSerialization graph: {certificate.graph!r}")
    for edge in certificate.graph.edges():
        print(f"  {edge}")

    witness = certificate.witness
    assert witness is not None
    print(f"\nFirst 12 events of the witness serial behavior "
          f"(of {len(witness)}):")
    print(format_behavior(witness[:12]))

    serial = serial_projection(result.behavior)
    print(f"\nThe concurrent run interleaved {len(serial)} serial events; "
          f"the witness replays them as one serial execution with the same "
          f"user view at T0.")


if __name__ == "__main__":
    main()
