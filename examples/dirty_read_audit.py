#!/usr/bin/env python3
"""Auditing anomalous logs with the certifier — and the counterexamples.

The serialization-graph test is a *checker*: point it at any recorded
behavior (here: the canonical scenarios shipped in ``repro.scenarios``)
and it diagnoses what went wrong:

* ``dirty-read``   — appropriate-return-values violation (Lemma 6's
  "safe" condition fails);
* ``lost-update`` / ``write-skew`` — cycles in the serialization graph;
* ``blind-writes`` — rejected by the SG test yet *serially correct*:
  acyclicity is sufficient, not necessary (unlike the classical theory);
* ``mvto-stale-read`` — correct in timestamp order; the single-version
  test rejects it (the multiversion boundary of Section 7).

The brute-force oracle supplies ground truth for the rejected cases.
"""

from repro import certify, oracle_serially_correct
from repro.scenarios import build_scenario, scenario_names


def audit(name: str) -> None:
    behavior, system_type, expectation = build_scenario(name)
    print(f"=== {name} " + "=" * max(1, 50 - len(name)))
    print(f"({expectation.reason})")
    certificate = certify(behavior, system_type)
    print(certificate.explain())
    if not certificate.certified:
        verdict = oracle_serially_correct(behavior, system_type)
        outcome = (
            "IS serially correct anyway" if verdict else "is genuinely incorrect"
        )
        print(
            f"Brute-force oracle ({verdict.orders_tried} orders tried): "
            f"the behavior {outcome}."
        )
    print()


def main() -> None:
    for name in scenario_names():
        audit(name)
    print("Takeaway: ARV violations and SG cycles pinpoint real anomalies;")
    print("blind-writes and mvto-stale-read show the test is sufficient,")
    print("not necessary, for the user-view correctness notion.")


if __name__ == "__main__":
    main()
