#!/usr/bin/env python3
"""Type-specific concurrency: undo logging vs read/write locking.

Section 6 of the paper generalises the serialization graph to arbitrary
data types so that algorithms can exploit *commutativity*.  This example
makes the gap concrete: many transactions increment one hotspot counter.

* Under Moss read/write locking the counter is a register: every
  increment is a read-modify-write and the writers serialise, blocking
  each other until commit.
* Under undo logging with the counter type, increments commute backward,
  so they all proceed concurrently; only a read must wait.

Both runs are certified serially correct — the difference is purely how
much concurrency the object admits (measured as blocked-access steps).
"""

from repro import (
    EagerInformPolicy,
    MossRWLockingObject,
    ObjectName,
    RWSpec,
    UndoLoggingObject,
    certify,
    make_generic_system,
    run_system,
)
from repro.core import ROOT
from repro.sim.programs import (
    TransactionProgram,
    op,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from repro.spec.builtin import CounterInc, CounterRead, CounterType

HOT = ObjectName("hits")
CLIENTS = 8


def locking_setup():
    """Counter as a register: increment = read then write (value baked in)."""
    # Every client writes a distinct value: under locking they serialise
    # anyway, so the final value is whichever committed last.
    programs = {
        ROOT: TransactionProgram(
            tuple(
                sub(seq(read(HOT, "r"), write(HOT, i + 1, "w")), f"client{i}")
                for i in range(CLIENTS)
            ),
            sequential=False,
        )
    }
    system_type = system_type_for({HOT: RWSpec(initial=0)}, programs)
    return system_type, programs, MossRWLockingObject


def undo_setup():
    """Counter as a counter: increments commute."""
    programs = {
        ROOT: TransactionProgram(
            tuple(
                sub(seq(op(HOT, CounterInc(1), "inc")), f"client{i}")
                for i in range(CLIENTS)
            )
            + (sub(seq(op(HOT, CounterRead(), "audit")), "auditor"),),
            sequential=False,
        )
    }
    system_type = system_type_for({HOT: CounterType(initial=0)}, programs)
    return system_type, programs, UndoLoggingObject


def run(label, setup):
    system_type, programs, factory = setup()
    system = make_generic_system(system_type, programs, factory)
    result = run_system(
        system,
        EagerInformPolicy(seed=4),
        system_type,
        max_steps=6000,
        collect_blocking=True,
        resolve_deadlocks=True,
    )
    certificate = certify(result.behavior, system_type)
    assert certificate.certified, certificate.explain()
    print(f"{label:24s} blocked-access steps: "
          f"{result.stats.blocked_access_steps:5d}   "
          f"committed: {result.stats.top_level_committed}   "
          f"deadlock victims: {result.stats.deadlock_aborts}")
    return result


def main() -> None:
    print(f"{CLIENTS} concurrent clients hammering one hotspot counter\n")
    locking = run("Moss RW locking", locking_setup)
    undo = run("undo logging (counter)", undo_setup)
    ratio = (locking.stats.blocked_access_steps + 1) / (
        undo.stats.blocked_access_steps + 1
    )
    print(f"\nCommutativity admitted ~{ratio:.1f}x less blocking; both runs "
          f"certified serially correct for T0.")


if __name__ == "__main__":
    main()
